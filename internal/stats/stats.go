// Package stats provides the small statistics toolkit used by the
// experiment harness: means with confidence intervals, CDFs,
// percentiles, histograms, and boxplot five-number summaries.
//
// The paper reports means with 95% confidence intervals over five runs
// (§4.1), CDFs over the device fleet (Figure 2), scatter/fraction plots
// (Figures 3–4), violin-style distributions (Figure 5), and boxplots of
// state dwell times (Figure 6). Everything needed to regenerate those
// summaries lives here.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator).
// It returns 0 for fewer than two samples.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// tCritical95 holds two-sided 95% Student-t critical values indexed by
// degrees of freedom (1-based). Values beyond the table fall back to the
// normal approximation 1.96.
var tCritical95 = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// of xs using the Student-t distribution, matching the paper's "mean
// results with 95% confidence intervals" reporting. It returns 0 for
// fewer than two samples.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	df := n - 1
	t := 1.96
	if df < len(tCritical95) {
		t = tCritical95[df]
	}
	return t * StdDev(xs) / math.Sqrt(float64(n))
}

// MeanCI is a mean together with its 95% CI half-width.
type MeanCI struct {
	Mean float64
	CI   float64
	N    int
}

// Summarize computes the MeanCI of xs.
func Summarize(xs []float64) MeanCI {
	return MeanCI{Mean: Mean(xs), CI: CI95(xs), N: len(xs)}
}

// String renders as "m ± ci".
func (m MeanCI) String() string { return fmt.Sprintf("%.1f ± %.1f", m.Mean, m.CI) }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// linear interpolation between closest ranks. It returns 0 for an empty
// slice. The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

func percentileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF over xs. The input is copied.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P[X ≤ x].
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	// Advance over equal values so At is right-continuous (≤, not <).
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the smallest x with P[X ≤ x] ≥ q, for q in (0,1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return c.sorted[i]
}

// Points returns (x, P[X ≤ x]) pairs suitable for plotting the CDF curve.
func (c *CDF) Points() (xs, ps []float64) {
	n := len(c.sorted)
	xs = make([]float64, n)
	ps = make([]float64, n)
	for i, v := range c.sorted {
		xs[i] = v
		ps[i] = float64(i+1) / float64(n)
	}
	return xs, ps
}

// N returns the number of samples behind the CDF.
func (c *CDF) N() int { return len(c.sorted) }

// BoxPlot is a five-number summary plus mean, as used for the dwell-time
// boxplots in Figure 6.
type BoxPlot struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// NewBoxPlot summarizes xs. It returns a zero BoxPlot for empty input.
func NewBoxPlot(xs []float64) BoxPlot {
	if len(xs) == 0 {
		return BoxPlot{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return BoxPlot{
		Min:    s[0],
		Q1:     percentileSorted(s, 25),
		Median: percentileSorted(s, 50),
		Q3:     percentileSorted(s, 75),
		Max:    s[len(s)-1],
		Mean:   Mean(s),
		N:      len(s),
	}
}

// String renders the summary compactly.
func (b BoxPlot) String() string {
	return fmt.Sprintf("min=%.1f q1=%.1f med=%.1f q3=%.1f max=%.1f (n=%d)",
		b.Min, b.Q1, b.Median, b.Q3, b.Max, b.N)
}

// Histogram is a fixed-bin histogram.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram over [lo, hi) with nbins bins.
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v) nbins=%d", lo, hi, nbins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
}

// Add records a sample. Samples outside [lo, hi) are clamped to the
// first/last bin so tails remain visible.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of samples added.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the share of samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// Ratio returns a/b, or 0 when b is 0. It keeps percentage computations
// in the experiment code tidy.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Pct returns 100*a/b, or 0 when b is 0.
func Pct(a, b float64) float64 { return 100 * Ratio(a, b) }

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
