// Package kernbench holds the kernel benchmark bodies shared between
// the per-package `go test -bench` wrappers and the cmd/coalbench
// binary. Keeping one implementation means the numbers in
// results/kernel-bench.txt, BENCH_5.json and an ad-hoc
// `go test -bench` run all measure exactly the same work.
//
// Every body calls b.ReportAllocs: allocations per op are the
// machine-independent half of each measurement, and the one a CI
// regression gate can hold to a tight threshold.
//
// All benchmark inputs are fixed and seeded — nothing here reads wall
// time or global randomness, so repeated runs measure identical
// simulated work.
package kernbench

import (
	"testing"
	"time"

	"coalqoe/internal/dash"
	"coalqoe/internal/device"
	"coalqoe/internal/exp"
	"coalqoe/internal/mem"
	"coalqoe/internal/proc"
	"coalqoe/internal/sched"
	"coalqoe/internal/simclock"
	"coalqoe/internal/study"
	"coalqoe/internal/telemetry"
	"coalqoe/internal/trace"
	"coalqoe/internal/units"
)

// Entry names one benchmark of the suite.
type Entry struct {
	// Name is hierarchical ("clock/dispatch"); coalbench reports it
	// verbatim and the test wrappers map it onto Benchmark functions.
	Name string
	Fn   func(b *testing.B)
}

// Suite is the full kernel benchmark suite in report order.
var Suite = []Entry{
	{"clock/dispatch", ClockDispatch},
	{"clock/every", ClockEvery},
	{"clock/cancel", ClockCancel},
	{"sched/ticks", SchedTicks},
	{"mem/scan", MemScan},
	{"telemetry/sample", TelemetrySample},
	{"run/video60s", VideoRun60s},
	{"grid/fig9quick", GridFig9Quick},
	{"fleet/users10k", FleetUsers10k},
}

// Lookup returns the named suite entry.
func Lookup(name string) (Entry, bool) {
	for _, e := range Suite {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// clockEvents is the one-shot batch size of ClockDispatch and
// ClockCancel: large enough that heap depth matters, small enough to
// keep one op under a millisecond.
const clockEvents = 4096

// ClockDispatch measures the simclock hot loop: schedule a batch of
// one-shot events at scattered times, then dispatch them all. One op =
// one full schedule+dispatch cycle of clockEvents events.
func ClockDispatch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := simclock.New(1)
		fired := 0
		fn := func() { fired++ }
		for j := 0; j < clockEvents; j++ {
			// 977 is prime: times scatter instead of colliding.
			c.Schedule(time.Duration(j%977)*time.Millisecond, fn)
		}
		c.Run()
		if fired != clockEvents {
			b.Fatalf("fired %d of %d events", fired, clockEvents)
		}
	}
}

// ClockEvery measures periodic re-arm: 32 repeating timers with
// co-prime periods dispatched over 10 simulated seconds. One op = one
// full 10 s run (~28k dispatches).
func ClockEvery(b *testing.B) {
	periods := []time.Duration{7, 11, 13, 17}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := simclock.New(1)
		fired := 0
		fn := func() { fired++ }
		for j := 0; j < 32; j++ {
			c.Every(periods[j%len(periods)]*time.Millisecond, fn)
		}
		c.RunUntil(10 * time.Second)
		if fired == 0 {
			b.Fatal("no periodic events fired")
		}
	}
}

// ClockCancel measures cancellation cost and its effect on the queue:
// schedule clockEvents far-future one-shots, cancel every other one,
// then dispatch the rest. With true heap removal the dispatch loop
// only ever sees live events.
func ClockCancel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := simclock.New(1)
		fired := 0
		fn := func() { fired++ }
		evs := make([]*simclock.Event, clockEvents)
		for j := 0; j < clockEvents; j++ {
			evs[j] = c.Schedule(time.Duration(j%977)*time.Millisecond, fn)
		}
		for j := 0; j < clockEvents; j += 2 {
			evs[j].Cancel()
		}
		c.Run()
		if fired != clockEvents/2 {
			b.Fatalf("fired %d, want %d", fired, clockEvents/2)
		}
	}
}

// SchedTicks measures the scheduler step loop: 12 threads (2 RT, 10
// fair) on 4 cores, fed periodic work, over 5 simulated seconds. One
// op = 5000 ticks with realistic contention.
func SchedTicks(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := simclock.New(1)
		tr := trace.New(0)
		s := sched.New(c, sched.Config{
			CoreSpeeds: []float64{1, 1, 1, 1},
			Tracer:     tr,
		})
		var threads []*sched.Thread
		for j := 0; j < 2; j++ {
			threads = append(threads, s.Spawn("rt", "bench", sched.ClassRT, 0))
		}
		for j := 0; j < 10; j++ {
			threads = append(threads, s.Spawn("fair", "bench", sched.ClassFair, 0))
		}
		// Each thread gets a periodic burst: more total demand than the
		// cores supply, so the fair path (sorting, vruntime, preemption)
		// stays exercised throughout.
		for j, t := range threads {
			t := t
			cost := time.Duration(200+50*j) * time.Microsecond
			c.Every(time.Duration(2+j%5)*time.Millisecond, func() {
				t.Enqueue(cost, nil)
			})
		}
		c.RunUntil(5 * time.Second)
		s.Stop()
		c.RunUntil(6 * time.Second)
	}
}

// MemScan measures the reclaim accounting hot path: alloc/free churn
// with scan batches and a pressure read per simulated millisecond,
// over 2 simulated seconds. One op = 2000 scan+pressure rounds.
func MemScan(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := simclock.New(1)
		m := mem.New(c, mem.Config{
			Total:         1 * units.GiB,
			KernelReserve: 128 * units.MiB,
			ZRAMMax:       256 * units.MiB,
		})
		m.SetWorkingSet("fg", mem.WorkingSet{Anon: units.PagesOf(200 * units.MiB), File: units.PagesOf(120 * units.MiB)})
		m.SetWorkingSet("bg", mem.WorkingSet{Anon: units.PagesOf(80 * units.MiB), File: units.PagesOf(40 * units.MiB)})
		// Occupy most of RAM so scans find work.
		m.ForceAllocAnon(units.PagesOf(500 * units.MiB))
		m.FileRead(units.PagesOf(250 * units.MiB))
		m.MarkDirty(units.PagesOf(40 * units.MiB))
		sink := 0.0
		c.Every(time.Millisecond, func() {
			m.AllocAnon(units.PagesOf(1 * units.MiB))
			r := m.ScanBatch(128)
			if r.DirtyQueued > 0 {
				m.CompleteWriteback(r.DirtyQueued)
			}
			m.FreeAnon(units.PagesOf(1 * units.MiB))
			sink += m.Pressure()
		})
		c.RunUntil(2 * time.Second)
		if sink < 0 {
			b.Fatal("impossible pressure")
		}
	}
}

// TelemetrySample measures the sampler fast path: one Sample() over a
// registry of 36 series. One op = one sampling tick, the per-period
// cost a telemetry-enabled run pays.
func TelemetrySample(b *testing.B) {
	c := simclock.New(1)
	reg := telemetry.NewRegistry()
	for _, name := range []string{
		"a.count", "b.count", "c.count", "d.count", "e.count", "f.count",
		"g.count", "h.count", "i.count", "j.count", "k.count", "l.count",
	} {
		reg.Counter(name).Add(7)
	}
	for _, name := range []string{
		"a.gauge", "b.gauge", "c.gauge", "d.gauge", "e.gauge", "f.gauge",
		"g.gauge", "h.gauge", "i.gauge", "j.gauge", "k.gauge", "l.gauge",
	} {
		reg.Gauge(name).Set(3.5)
	}
	for _, name := range []string{
		"a.fn", "b.fn", "c.fn", "d.fn", "e.fn", "f.fn",
		"g.fn", "h.fn", "i.fn", "j.fn", "k.fn", "l.fn",
	} {
		reg.SampleFunc(name, func() float64 { return 1.25 })
	}
	s := telemetry.NewSampler(c, reg, telemetry.Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample()
	}
}

// VideoRun60s measures one end-to-end experiment cell: a 60 s 720p30
// video on a Nokia 1 under moderate pressure — the workload class
// every grid is made of. One op = one full run.
func VideoRun60s(b *testing.B) {
	video := dash.TestVideos[0]
	video.Duration = 60 * time.Second
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := exp.Run(exp.VideoRun{
			//coalvet:allow seedlane benchmark iterations need distinct seeds, not independent lanes; correlation cannot bias ns/op
			Seed:       int64(i) + 1,
			Profile:    device.Nokia1,
			Video:      video,
			Resolution: dash.R720p,
			FPS:        30,
			Pressure:   proc.Moderate,
		})
		if res.Metrics.FramesRendered == 0 && !res.Metrics.Crashed {
			b.Fatal("run produced no frames and no crash")
		}
	}
}

// FleetUsers10k measures the streaming fleet engine: a 10k-user
// stratified panel folded through sharded aggregation with the
// synthetic per-user runner, so the number isolates the engine's own
// cost — population materialization, fold, merge — from kernel
// simulation speed. Shards and workers are pinned so every run
// measures identical work. One op = the whole panel.
func FleetUsers10k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		agg, _, err := study.RunFleetStream(study.FleetConfig{
			Seed:       10,
			Population: study.DefaultPopulation(10000, 10),
			Shards:     16,
			Workers:    4,
			Runner:     study.SyntheticRunner(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if agg.Recruited != 10000 {
			b.Fatalf("recruited %d of 10000", agg.Recruited)
		}
	}
}

// GridFig9Quick measures the headline end-to-end cost: the quick
// configuration of the paper's Figure 9 grid (resolution ladder ×
// pressure states), serially executed so the measurement is pure
// kernel speed, not executor parallelism. One op = the whole grid.
func GridFig9Quick(b *testing.B) {
	e, err := exp.Find("fig9")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep := e.Run(exp.Options{Quick: true, Seed: 9, Parallel: 1})
		if len(rep.Lines) == 0 {
			b.Fatal("fig9 produced no output")
		}
	}
}
