package trace_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"coalqoe/internal/telemetry"
	"coalqoe/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildTrace constructs a small deterministic tracer + telemetry dump
// by hand (no simulation), so the golden file is insensitive to model
// changes and only guards the export format.
func buildTrace() (*trace.Tracer, *telemetry.Dump) {
	tr := trace.New(0)
	tr.KeepIntervals(true)
	codec := trace.ThreadKey{TID: 1, Name: "MediaCodec", Process: "org.mozilla.firefox"}
	kswapd := trace.ThreadKey{TID: 2, Name: "kswapd0", Process: "kernel"}
	mmcqd := trace.ThreadKey{TID: 3, Name: "mmcqd/0", Process: "kernel"}
	tr.Register(codec, trace.Sleeping, 0)
	tr.Register(kswapd, trace.Sleeping, 0)
	tr.Register(mmcqd, trace.Sleeping, 0)

	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	tr.Transition(1, trace.Running, 0, ms(1))
	tr.Transition(2, trace.Runnable, -1, ms(2))
	tr.Transition(3, trace.Running, 1, ms(3))
	tr.Transition(1, trace.RunnablePreempted, -1, ms(4))
	tr.RecordPreemption(codec, mmcqd, ms(4))
	tr.Transition(3, trace.Sleeping, -1, ms(6))
	tr.PreemptorStopped(3, ms(6))
	tr.Transition(1, trace.Running, 1, ms(6))
	tr.Transition(2, trace.Running, 0, ms(6))
	tr.Transition(1, trace.UninterruptibleSleep, -1, ms(8))
	tr.Finish(ms(10))

	dump := &telemetry.Dump{
		Period: 3 * time.Millisecond,
		Series: []telemetry.Series{
			{
				Name:   "mem.free_pages",
				Times:  []time.Duration{ms(3), ms(6), ms(9)},
				Values: []float64{51200, 38000, 12000.5},
			},
			{
				Name:   "player.buffer_ms",
				Times:  []time.Duration{ms(3), ms(6), ms(9)},
				Values: []float64{4000, 3200, 0},
			},
		},
	}
	return tr, dump
}

func TestWriteChromeTraceGolden(t *testing.T) {
	tr, dump := buildTrace()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, dump); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run `go test ./internal/trace -update` to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("export differs from golden file\ngot:  %s\nwant: %s", buf.Bytes(), want)
	}
}

func TestWriteChromeTraceStableAcrossRuns(t *testing.T) {
	render := func() string {
		tr, dump := buildTrace()
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf, dump); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render() != render() {
		t.Fatal("identical traces must export identical bytes")
	}
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	tr, dump := buildTrace()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, dump); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	counts := map[string]int{}
	pids := map[int]string{}
	for _, ev := range doc.TraceEvents {
		counts[ev.Ph]++
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				pids[ev.PID] = ev.Args["name"].(string)
			}
		case "X":
			if ev.Name == "Sleeping" {
				t.Fatal("Sleeping intervals must not be exported")
			}
			if ev.Dur < 0 || ev.TS < 0 {
				t.Fatalf("bad interval %+v", ev)
			}
		case "C":
			if ev.PID != 0 {
				t.Fatalf("counter event on pid %d, want telemetry pid 0", ev.PID)
			}
			if _, ok := ev.Args["value"].(float64); !ok {
				t.Fatalf("counter event without numeric value: %+v", ev)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	// 3 samples × 2 series.
	if counts["C"] != 6 {
		t.Fatalf("counter events = %d, want 6", counts["C"])
	}
	if counts["X"] == 0 {
		t.Fatal("no thread intervals exported")
	}
	// Processes: telemetry(0) + kernel + org.mozilla.firefox, sorted.
	if pids[0] != "telemetry" || pids[1] != "kernel" || pids[2] != "org.mozilla.firefox" {
		t.Fatalf("pid map = %v", pids)
	}
	// 3 process_name + 3 thread_name metadata events.
	if counts["M"] != 6 {
		t.Fatalf("metadata events = %d, want 6", counts["M"])
	}
}

func TestWriteChromeTraceNoDump(t *testing.T) {
	tr, _ := buildTrace()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"telemetry"`)) {
		t.Fatal("nil dump must not emit the telemetry process")
	}
}
