// Package trace records scheduler activity in the way Google's Perfetto
// records it on a real Android device, so that the paper's §5 analyses
// can be rerun against the simulator.
//
// The paper derives three kinds of results from Perfetto traces:
//
//   - time spent by threads in each process state (Table 4, Figure 13),
//   - the top running threads ranked by total run time (§5 "Top running
//     threads"),
//   - preemption triples: how often a higher-priority thread preempted a
//     victim, how long the preemptor ran after the preemption, and how
//     long the victim waited to get the CPU back (Table 5).
//
// The Tracer therefore records per-thread state intervals and preemption
// events, and exposes query methods producing exactly those aggregates.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// State mirrors the scheduler states Perfetto reports. The names match
// the paper's Table 4 terminology.
type State int

// Thread states.
const (
	// Sleeping is interruptible sleep (S): the thread has no work.
	Sleeping State = iota
	// Runnable (R) is waiting for a CPU that is busy with other work.
	Runnable
	// RunnablePreempted is waiting for the CPU after having been
	// preempted by the kernel to schedule a higher-priority thread.
	RunnablePreempted
	// Running is executing on a core.
	Running
	// UninterruptibleSleep (D) is blocked on I/O, e.g. a page fault
	// being served by the storage device during direct reclaim.
	UninterruptibleSleep

	numStates
)

// String returns the paper's name for the state.
func (s State) String() string {
	switch s {
	case Sleeping:
		return "Sleeping"
	case Runnable:
		return "Runnable"
	case RunnablePreempted:
		return "Runnable (Preempted)"
	case Running:
		return "Running"
	case UninterruptibleSleep:
		return "Uninterruptible Sleep"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// ThreadKey identifies a thread in the trace.
type ThreadKey struct {
	TID     int
	Name    string // thread name, e.g. "MediaCodec", "kswapd0"
	Process string // owning process name, e.g. "org.mozilla.firefox"
}

// Preemption is one preemption event: preemptor displaced victim from a
// core at At; the preemptor then ran continuously for PreemptorRan; the
// victim regained a CPU after VictimWaited (zero values until resolved).
type Preemption struct {
	Victim       ThreadKey
	Preemptor    ThreadKey
	At           time.Duration
	PreemptorRan time.Duration
	VictimWaited time.Duration
	resolvedRun  bool
	resolvedWait bool
}

// threadRecord accumulates per-thread aggregates.
type threadRecord struct {
	key        ThreadKey
	state      State
	since      time.Duration
	inState    [numStates]time.Duration
	migrations int
	lastCore   int
	everRan    bool
}

// Tracer records thread scheduling activity. It is not safe for
// concurrent use; the simulation is single-goroutine.
type Tracer struct {
	started time.Duration
	now     time.Duration
	threads map[int]*threadRecord
	preempt []*Preemption
	// open preemptions indexed for resolution
	openRun  map[int][]*Preemption // preemptor TID -> events awaiting run length
	openWait map[int][]*Preemption // victim TID -> events awaiting wait length

	keepIntervals bool
	intervals     []Interval
}

// New returns an empty Tracer whose clock starts at start.
func New(start time.Duration) *Tracer {
	return &Tracer{
		started:  start,
		now:      start,
		threads:  make(map[int]*threadRecord),
		openRun:  make(map[int][]*Preemption),
		openWait: make(map[int][]*Preemption),
	}
}

// Register introduces a thread in the given initial state.
func (t *Tracer) Register(key ThreadKey, s State, now time.Duration) {
	t.advance(now)
	t.threads[key.TID] = &threadRecord{key: key, state: s, since: now, lastCore: -1}
}

// Unregister closes a thread's current interval (e.g. the process died).
func (t *Tracer) Unregister(tid int, now time.Duration) {
	t.advance(now)
	r, ok := t.threads[tid]
	if !ok {
		return
	}
	r.inState[r.state] += now - r.since
	r.since = now
	r.state = Sleeping
}

func (t *Tracer) advance(now time.Duration) {
	if now > t.now {
		t.now = now
	}
}

// Transition moves thread tid to state s at time now, closing the
// previous interval. core is the core the thread runs on when s is
// Running (used for migration counting); pass -1 otherwise.
func (t *Tracer) Transition(tid int, s State, core int, now time.Duration) {
	t.advance(now)
	r, ok := t.threads[tid]
	if !ok {
		return
	}
	if r.state != s {
		r.inState[r.state] += now - r.since
		if t.keepIntervals && now > r.since {
			t.intervals = append(t.intervals, Interval{Key: r.key, State: r.state, Start: r.since, End: now})
		}
		r.since = now
		r.state = s
	}
	if s == Running {
		if r.everRan && core != r.lastCore {
			r.migrations++
		}
		r.everRan = true
		r.lastCore = core
		t.resolveVictimWait(tid, now)
	} else if r.state != Running {
		// Leaving Running resolves the preemptor-run measurements below
		// via PreemptorStopped; nothing to do here.
	}
}

// RecordPreemption notes that preemptor displaced victim at time now.
// The run/wait components are resolved by later Transition and
// PreemptorStopped calls.
func (t *Tracer) RecordPreemption(victim, preemptor ThreadKey, now time.Duration) {
	t.advance(now)
	p := &Preemption{Victim: victim, Preemptor: preemptor, At: now}
	t.preempt = append(t.preempt, p)
	t.openRun[preemptor.TID] = append(t.openRun[preemptor.TID], p)
	t.openWait[victim.TID] = append(t.openWait[victim.TID], p)
}

// PreemptorStopped records that thread tid stopped running at time now,
// closing the "ran after preemption" window of any preemption it caused.
func (t *Tracer) PreemptorStopped(tid int, now time.Duration) {
	t.advance(now)
	open := t.openRun[tid]
	if len(open) == 0 {
		return
	}
	for _, p := range open {
		p.PreemptorRan = now - p.At
		p.resolvedRun = true
	}
	delete(t.openRun, tid)
}

func (t *Tracer) resolveVictimWait(tid int, now time.Duration) {
	open := t.openWait[tid]
	if len(open) == 0 {
		return
	}
	for _, p := range open {
		p.VictimWaited = now - p.At
		p.resolvedWait = true
	}
	delete(t.openWait, tid)
}

// Finish closes all open intervals at time now. Call once at the end of
// a run before querying. Iteration is in sorted TID order so the
// closing intervals land in t.intervals deterministically — they are
// exported verbatim (KeepTrace), where map order would leak into the
// artifact.
func (t *Tracer) Finish(now time.Duration) {
	t.advance(now)
	for _, tid := range sortedTIDs(t.threads) {
		r := t.threads[tid]
		r.inState[r.state] += now - r.since
		if t.keepIntervals && now > r.since {
			t.intervals = append(t.intervals, Interval{Key: r.key, State: r.state, Start: r.since, End: now})
		}
		r.since = now
	}
	for _, tid := range sortedTIDs(t.openRun) {
		t.PreemptorStopped(tid, now)
	}
	for _, tid := range sortedTIDs(t.openWait) {
		t.resolveVictimWait(tid, now)
	}
}

// sortedTIDs returns the map's keys in ascending order.
func sortedTIDs[V any](m map[int]V) []int {
	tids := make([]int, 0, len(m))
	for tid := range m {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	return tids
}

// ThreadFilter selects threads for aggregate queries.
type ThreadFilter func(ThreadKey) bool

// ByProcess matches all threads of the named process.
func ByProcess(name string) ThreadFilter {
	return func(k ThreadKey) bool { return k.Process == name }
}

// ByName matches threads whose name contains substr.
func ByName(substr string) ThreadFilter {
	return func(k ThreadKey) bool { return strings.Contains(k.Name, substr) }
}

// AnyOf matches threads accepted by any of the filters.
func AnyOf(filters ...ThreadFilter) ThreadFilter {
	return func(k ThreadKey) bool {
		for _, f := range filters {
			if f(k) {
				return true
			}
		}
		return false
	}
}

// TimeInState sums the time matching threads spent in state s.
func (t *Tracer) TimeInState(f ThreadFilter, s State) time.Duration {
	var total time.Duration
	//coalvet:allow maporder integer Duration sum over threads, order-insensitive
	for _, r := range t.threads {
		if f(r.key) {
			total += r.inState[s]
		}
	}
	return total
}

// StateBreakdown returns the per-state totals for matching threads.
func (t *Tracer) StateBreakdown(f ThreadFilter) map[State]time.Duration {
	out := make(map[State]time.Duration, int(numStates))
	for s := State(0); s < numStates; s++ {
		out[s] = t.TimeInState(f, s)
	}
	return out
}

// ThreadRank is one row of the top-running-threads report.
type ThreadRank struct {
	Key        ThreadKey
	Running    time.Duration
	Migrations int
}

// TopRunning returns threads ranked by total Running time, descending.
// n ≤ 0 returns all threads.
func (t *Tracer) TopRunning(n int) []ThreadRank {
	ranks := make([]ThreadRank, 0, len(t.threads))
	//coalvet:allow maporder rows are fully ordered below by (Running, TID) before any truncation
	for _, r := range t.threads {
		ranks = append(ranks, ThreadRank{Key: r.key, Running: r.inState[Running], Migrations: r.migrations})
	}
	sort.Slice(ranks, func(i, j int) bool {
		if ranks[i].Running != ranks[j].Running {
			return ranks[i].Running > ranks[j].Running
		}
		return ranks[i].Key.TID < ranks[j].Key.TID
	})
	if n > 0 && n < len(ranks) {
		ranks = ranks[:n]
	}
	return ranks
}

// RankOf returns the 1-based rank of the named thread in the
// top-running order, or 0 if the thread is unknown.
func (t *Tracer) RankOf(name string) int {
	for i, r := range t.TopRunning(0) {
		if r.Key.Name == name {
			return i + 1
		}
	}
	return 0
}

// Migrations returns the core-migration count for thread tid.
func (t *Tracer) Migrations(tid int) int {
	if r, ok := t.threads[tid]; ok {
		return r.migrations
	}
	return 0
}

// PreemptionStats is the Table 5 triple for one preemptor against a set
// of victim threads.
type PreemptionStats struct {
	Count            int
	PreemptorRanFor  time.Duration // total run time after preemptions
	VictimsWaitedFor time.Duration // total victim wait to regain CPU
}

// PreemptionsBy aggregates preemption events where the preemptor matches
// pf and the victim matches vf.
func (t *Tracer) PreemptionsBy(pf, vf ThreadFilter) PreemptionStats {
	var s PreemptionStats
	for _, p := range t.preempt {
		if pf(p.Preemptor) && vf(p.Victim) {
			s.Count++
			s.PreemptorRanFor += p.PreemptorRan
			s.VictimsWaitedFor += p.VictimWaited
		}
	}
	return s
}

// Preemptions returns a copy of all recorded preemption events.
func (t *Tracer) Preemptions() []Preemption {
	out := make([]Preemption, len(t.preempt))
	for i, p := range t.preempt {
		out[i] = *p
	}
	return out
}

// Duration returns the traced time span.
func (t *Tracer) Duration() time.Duration { return t.now - t.started }
