package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Interval is one contiguous span a thread spent in a state — the
// row format of a Perfetto scheduling track.
type Interval struct {
	Key   ThreadKey
	State State
	Start time.Duration
	End   time.Duration
}

// Duration returns the interval length.
func (iv Interval) Duration() time.Duration { return iv.End - iv.Start }

// KeepIntervals switches the tracer to record every state interval in
// addition to the aggregates. Recording is off by default because a
// multi-minute session generates hundreds of thousands of transitions;
// turn it on for sessions you intend to export.
func (t *Tracer) KeepIntervals(on bool) { t.keepIntervals = on }

// Intervals returns the recorded intervals in chronological order.
// Only populated after KeepIntervals(true).
func (t *Tracer) Intervals() []Interval {
	out := append([]Interval(nil), t.intervals...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Key.TID < out[j].Key.TID
	})
	return out
}

// WriteText dumps a human-readable trace: a per-thread summary sorted
// by running time (the "top running threads" view of §5), and, if
// interval recording was enabled, the chronological interval log.
func (t *Tracer) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# trace over %v\n", t.Duration()); err != nil {
		return err
	}
	fmt.Fprintf(w, "#\n# top running threads\n")
	fmt.Fprintf(w, "%-5s %-20s %-24s %12s %12s %12s %6s\n",
		"tid", "thread", "process", "running", "runnable", "dsleep", "migr")
	for _, rank := range t.TopRunning(0) {
		r := t.threads[rank.Key.TID]
		fmt.Fprintf(w, "%-5d %-20s %-24s %12v %12v %12v %6d\n",
			rank.Key.TID, rank.Key.Name, rank.Key.Process,
			r.inState[Running].Round(time.Millisecond),
			(r.inState[Runnable] + r.inState[RunnablePreempted]).Round(time.Millisecond),
			r.inState[UninterruptibleSleep].Round(time.Millisecond),
			rank.Migrations)
	}
	if len(t.preempt) > 0 {
		fmt.Fprintf(w, "#\n# preemption events: %d\n", len(t.preempt))
	}
	if t.keepIntervals {
		fmt.Fprintf(w, "#\n# intervals\n")
		for _, iv := range t.Intervals() {
			if _, err := fmt.Fprintf(w, "%12v %12v %-20s %-24s %s\n",
				iv.Start, iv.End, iv.Key.Name, iv.Key.Process, iv.State); err != nil {
				return err
			}
		}
	}
	return nil
}
