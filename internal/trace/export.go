package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"coalqoe/internal/telemetry"
)

// Interval is one contiguous span a thread spent in a state — the
// row format of a Perfetto scheduling track.
type Interval struct {
	Key   ThreadKey
	State State
	Start time.Duration
	End   time.Duration
}

// Duration returns the interval length.
func (iv Interval) Duration() time.Duration { return iv.End - iv.Start }

// KeepIntervals switches the tracer to record every state interval in
// addition to the aggregates. Recording is off by default because a
// multi-minute session generates hundreds of thousands of transitions;
// turn it on for sessions you intend to export.
func (t *Tracer) KeepIntervals(on bool) { t.keepIntervals = on }

// Intervals returns the recorded intervals in chronological order.
// Only populated after KeepIntervals(true).
func (t *Tracer) Intervals() []Interval {
	out := append([]Interval(nil), t.intervals...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Key.TID < out[j].Key.TID
	})
	return out
}

// WriteText dumps a human-readable trace: a per-thread summary sorted
// by running time (the "top running threads" view of §5), and, if
// interval recording was enabled, the chronological interval log.
func (t *Tracer) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# trace over %v\n", t.Duration()); err != nil {
		return err
	}
	fmt.Fprintf(w, "#\n# top running threads\n")
	fmt.Fprintf(w, "%-5s %-20s %-24s %12s %12s %12s %6s\n",
		"tid", "thread", "process", "running", "runnable", "dsleep", "migr")
	for _, rank := range t.TopRunning(0) {
		r := t.threads[rank.Key.TID]
		fmt.Fprintf(w, "%-5d %-20s %-24s %12v %12v %12v %6d\n",
			rank.Key.TID, rank.Key.Name, rank.Key.Process,
			r.inState[Running].Round(time.Millisecond),
			(r.inState[Runnable] + r.inState[RunnablePreempted]).Round(time.Millisecond),
			r.inState[UninterruptibleSleep].Round(time.Millisecond),
			rank.Migrations)
	}
	if len(t.preempt) > 0 {
		fmt.Fprintf(w, "#\n# preemption events: %d\n", len(t.preempt))
	}
	if t.keepIntervals {
		fmt.Fprintf(w, "#\n# intervals\n")
		for _, iv := range t.Intervals() {
			if _, err := fmt.Fprintf(w, "%12v %12v %-20s %-24s %s\n",
				iv.Start, iv.End, iv.Key.Name, iv.Key.Process, iv.State); err != nil {
				return err
			}
		}
	}
	return nil
}

// The Chrome trace-event JSON format (chrome://tracing, Perfetto UI).
// "X" complete events carry thread state intervals, "C" counter events
// carry telemetry series, "M" metadata events name processes and
// threads. Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Cat  string `json:"cat,omitempty"`
	TS   int64  `json:"ts"`
	Dur  int64  `json:"dur,omitempty"`
	PID  int    `json:"pid"`
	TID  int    `json:"tid"`
	// S scopes "i" instant events ("g" = global, full-height line).
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// telemetryPID is the synthetic pid carrying counter tracks; real
// processes get pids from 1 in sorted name order.
const telemetryPID = 0

// markBaseTID is the first synthetic tid (under telemetryPID) carrying
// Mark annotations — injected fault windows, ABR decisions and similar
// run-level events. Each distinct Mark track gets its own tid from
// here up, in sorted track-name order.
const markBaseTID = 1

func micros(d time.Duration) int64 { return int64(d / time.Microsecond) }

// Mark is a named annotation on the trace timeline: an interval (End >
// Start, rendered as a complete event) or an instant (End == Start,
// rendered as a full-height global instant line). The fault injector's
// impairment windows export this way, so a Perfetto view shows network
// outages and memory-spike storms on the same timeline as the thread
// stalls they cause.
type Mark struct {
	Name  string
	Start time.Duration
	End   time.Duration
	// Track names the timeline row the mark renders on; marks sharing
	// a track share a row. Empty means "faults", the historical
	// default, so existing fault-window exports are unchanged.
	Track string
}

// track resolves the effective track name.
func (m Mark) track() string {
	if m.Track == "" {
		return "faults"
	}
	return m.Track
}

// WriteChromeTrace exports the recorded thread intervals — merged with
// the counter tracks of dump, if non-nil, and any marks — as one
// chrome://tracing-loadable JSON document: the simulator's version of
// the §5 Perfetto view, free memory and pgscan on the same timeline as
// the thread states they explain. Requires KeepIntervals(true) for the
// thread tracks. The output is deterministic: pids are assigned by
// sorted process name, intervals are chronological, series are sorted
// by name, marks render in argument order.
func (t *Tracer) WriteChromeTrace(w io.Writer, dump *telemetry.Dump, marks ...Mark) error {
	// Assign pids by sorted process name. Thread records are visited in
	// TID order only to collect the name set.
	procSet := make(map[string]bool)
	for _, tid := range sortedTIDs(t.threads) {
		procSet[t.threads[tid].key.Process] = true
	}
	var procs []string
	for name := range procSet {
		procs = append(procs, name)
	}
	sort.Strings(procs)
	pid := make(map[string]int, len(procs))
	for i, name := range procs {
		pid[name] = i + 1
	}

	var events []chromeEvent
	if (dump != nil && len(dump.Series) > 0) || len(marks) > 0 {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", PID: telemetryPID,
			Args: map[string]any{"name": "telemetry"},
		})
	}
	markTID := map[string]int{}
	if len(marks) > 0 {
		trackSet := map[string]bool{}
		for _, m := range marks {
			trackSet[m.track()] = true
		}
		var tracks []string
		for name := range trackSet {
			tracks = append(tracks, name)
		}
		sort.Strings(tracks)
		for i, name := range tracks {
			markTID[name] = markBaseTID + i
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", PID: telemetryPID, TID: markTID[name],
				Args: map[string]any{"name": name},
			})
		}
	}
	for _, name := range procs {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid[name],
			Args: map[string]any{"name": name},
		})
	}
	for _, tid := range sortedTIDs(t.threads) {
		r := t.threads[tid]
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: pid[r.key.Process], TID: tid,
			Args: map[string]any{"name": r.key.Name},
		})
	}

	// Thread state intervals. Sleeping spans are omitted: they carry no
	// information and dominate the interval count.
	for _, iv := range t.Intervals() {
		if iv.State == Sleeping {
			continue
		}
		events = append(events, chromeEvent{
			Name: iv.State.String(), Ph: "X", Cat: "sched",
			TS: micros(iv.Start), Dur: micros(iv.End - iv.Start),
			PID: pid[iv.Key.Process], TID: iv.Key.TID,
		})
	}

	// Mark annotations: intervals as complete events, instants as
	// global instant lines.
	for _, m := range marks {
		ev := chromeEvent{
			Name: m.Name, Cat: m.track(),
			TS: micros(m.Start), PID: telemetryPID, TID: markTID[m.track()],
		}
		if m.End > m.Start {
			ev.Ph = "X"
			ev.Dur = micros(m.End - m.Start)
		} else {
			ev.Ph = "i"
			ev.S = "g"
		}
		events = append(events, ev)
	}

	// Counter tracks: dump.Series is already sorted by name.
	if dump != nil {
		for _, s := range dump.Series {
			for i, ts := range s.Times {
				events = append(events, chromeEvent{
					Name: s.Name, Ph: "C", Cat: "telemetry",
					TS: micros(ts), PID: telemetryPID,
					Args: map[string]any{"value": s.Values[i]},
				})
			}
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
