package trace

import (
	"strings"
	"testing"
	"time"
)

func key(tid int, name, proc string) ThreadKey {
	return ThreadKey{TID: tid, Name: name, Process: proc}
}

func TestTimeInState(t *testing.T) {
	tr := New(0)
	k := key(1, "MediaCodec", "firefox")
	tr.Register(k, Sleeping, 0)
	tr.Transition(1, Running, 0, 10*time.Millisecond)
	tr.Transition(1, Runnable, -1, 30*time.Millisecond)
	tr.Transition(1, Running, 0, 50*time.Millisecond)
	tr.Finish(100 * time.Millisecond)

	f := ByProcess("firefox")
	if got := tr.TimeInState(f, Sleeping); got != 10*time.Millisecond {
		t.Errorf("Sleeping = %v, want 10ms", got)
	}
	if got := tr.TimeInState(f, Running); got != 70*time.Millisecond {
		t.Errorf("Running = %v, want 70ms", got)
	}
	if got := tr.TimeInState(f, Runnable); got != 20*time.Millisecond {
		t.Errorf("Runnable = %v, want 20ms", got)
	}
}

func TestStateBreakdownSumsToSpan(t *testing.T) {
	tr := New(0)
	tr.Register(key(1, "a", "p"), Sleeping, 0)
	tr.Transition(1, Running, 0, 25*time.Millisecond)
	tr.Transition(1, UninterruptibleSleep, -1, 60*time.Millisecond)
	tr.Finish(200 * time.Millisecond)
	var sum time.Duration
	for _, d := range tr.StateBreakdown(ByProcess("p")) {
		sum += d
	}
	if sum != 200*time.Millisecond {
		t.Errorf("state breakdown sums to %v, want 200ms", sum)
	}
}

func TestSameStateTransitionKeepsInterval(t *testing.T) {
	tr := New(0)
	tr.Register(key(1, "a", "p"), Running, 0)
	tr.Transition(1, Running, 0, 50*time.Millisecond) // no-op
	tr.Finish(100 * time.Millisecond)
	if got := tr.TimeInState(ByProcess("p"), Running); got != 100*time.Millisecond {
		t.Errorf("Running = %v, want 100ms", got)
	}
}

func TestTopRunningAndRank(t *testing.T) {
	tr := New(0)
	tr.Register(key(1, "kswapd0", "kernel"), Running, 0)
	tr.Register(key(2, "GeckoMain", "firefox"), Sleeping, 0)
	tr.Transition(2, Running, 1, 0)
	tr.Transition(1, Sleeping, -1, 30*time.Millisecond) // kswapd ran 30ms
	tr.Finish(100 * time.Millisecond)                   // firefox ran 100ms

	top := tr.TopRunning(2)
	if top[0].Key.Name != "GeckoMain" || top[1].Key.Name != "kswapd0" {
		t.Errorf("unexpected order: %v, %v", top[0].Key.Name, top[1].Key.Name)
	}
	if got := tr.RankOf("kswapd0"); got != 2 {
		t.Errorf("RankOf(kswapd0) = %d, want 2", got)
	}
	if got := tr.RankOf("nonexistent"); got != 0 {
		t.Errorf("RankOf(nonexistent) = %d, want 0", got)
	}
}

func TestMigrations(t *testing.T) {
	tr := New(0)
	tr.Register(key(1, "kswapd0", "kernel"), Sleeping, 0)
	tr.Transition(1, Running, 0, 0)
	tr.Transition(1, Runnable, -1, 10*time.Millisecond)
	tr.Transition(1, Running, 1, 20*time.Millisecond) // migrated 0->1
	tr.Transition(1, Runnable, -1, 30*time.Millisecond)
	tr.Transition(1, Running, 1, 40*time.Millisecond) // same core
	tr.Transition(1, Runnable, -1, 50*time.Millisecond)
	tr.Transition(1, Running, 3, 60*time.Millisecond) // migrated 1->3
	tr.Finish(70 * time.Millisecond)
	if got := tr.Migrations(1); got != 2 {
		t.Errorf("Migrations = %d, want 2", got)
	}
}

func TestPreemptionResolution(t *testing.T) {
	tr := New(0)
	victim := key(1, "MediaCodec", "firefox")
	mmcqd := key(2, "mmcqd/0", "kernel")
	tr.Register(victim, Running, 0)
	tr.Register(mmcqd, Sleeping, 0)

	// At t=10ms mmcqd preempts the codec thread.
	tr.Transition(1, RunnablePreempted, -1, 10*time.Millisecond)
	tr.Transition(2, Running, 0, 10*time.Millisecond)
	tr.RecordPreemption(victim, mmcqd, 10*time.Millisecond)

	// mmcqd runs 4ms, then the victim resumes at 20ms.
	tr.Transition(2, Sleeping, -1, 14*time.Millisecond)
	tr.PreemptorStopped(2, 14*time.Millisecond)
	tr.Transition(1, Running, 0, 20*time.Millisecond)
	tr.Finish(30 * time.Millisecond)

	s := tr.PreemptionsBy(ByName("mmcqd"), ByProcess("firefox"))
	if s.Count != 1 {
		t.Fatalf("Count = %d, want 1", s.Count)
	}
	if s.PreemptorRanFor != 4*time.Millisecond {
		t.Errorf("PreemptorRanFor = %v, want 4ms", s.PreemptorRanFor)
	}
	if s.VictimsWaitedFor != 10*time.Millisecond {
		t.Errorf("VictimsWaitedFor = %v, want 10ms", s.VictimsWaitedFor)
	}
	if got := tr.TimeInState(ByProcess("firefox"), RunnablePreempted); got != 10*time.Millisecond {
		t.Errorf("RunnablePreempted = %v, want 10ms", got)
	}
}

func TestFinishResolvesOpenPreemptions(t *testing.T) {
	tr := New(0)
	victim := key(1, "v", "p")
	pre := key(2, "rt", "kernel")
	tr.Register(victim, Running, 0)
	tr.Register(pre, Sleeping, 0)
	tr.Transition(1, RunnablePreempted, -1, 5*time.Millisecond)
	tr.Transition(2, Running, 0, 5*time.Millisecond)
	tr.RecordPreemption(victim, pre, 5*time.Millisecond)
	tr.Finish(25 * time.Millisecond)
	s := tr.PreemptionsBy(ByName("rt"), ByProcess("p"))
	if s.PreemptorRanFor != 20*time.Millisecond || s.VictimsWaitedFor != 20*time.Millisecond {
		t.Errorf("unresolved preemption not closed at Finish: %+v", s)
	}
}

func TestFilters(t *testing.T) {
	k := key(9, "mmcqd/0", "kernel")
	if !ByName("mmcqd")(k) || ByName("kswapd")(k) {
		t.Error("ByName misbehaves")
	}
	if !AnyOf(ByName("zzz"), ByProcess("kernel"))(k) {
		t.Error("AnyOf misbehaves")
	}
	if AnyOf(ByName("zzz"))(k) {
		t.Error("AnyOf matched nothing")
	}
}

func TestUnregisterClosesInterval(t *testing.T) {
	tr := New(0)
	tr.Register(key(1, "a", "p"), Running, 0)
	tr.Unregister(1, 40*time.Millisecond)
	tr.Finish(100 * time.Millisecond)
	if got := tr.TimeInState(ByProcess("p"), Running); got != 40*time.Millisecond {
		t.Errorf("Running = %v, want 40ms", got)
	}
}

func TestStateString(t *testing.T) {
	if RunnablePreempted.String() != "Runnable (Preempted)" {
		t.Errorf("got %q", RunnablePreempted.String())
	}
	if State(99).String() == "" {
		t.Error("unknown state should still render")
	}
}

func TestDuration(t *testing.T) {
	tr := New(time.Second)
	tr.Register(key(1, "a", "p"), Sleeping, time.Second)
	tr.Finish(3 * time.Second)
	if tr.Duration() != 2*time.Second {
		t.Errorf("Duration = %v, want 2s", tr.Duration())
	}
}

func TestIntervalRecordingAndExport(t *testing.T) {
	tr := New(0)
	tr.KeepIntervals(true)
	tr.Register(key(1, "MediaCodec", "firefox"), Sleeping, 0)
	tr.Transition(1, Running, 0, 10*time.Millisecond)
	tr.Transition(1, Runnable, -1, 30*time.Millisecond)
	tr.Finish(50 * time.Millisecond)

	ivs := tr.Intervals()
	if len(ivs) != 3 {
		t.Fatalf("got %d intervals, want 3", len(ivs))
	}
	var total time.Duration
	for i, iv := range ivs {
		total += iv.Duration()
		if i > 0 && iv.Start < ivs[i-1].Start {
			t.Error("intervals not sorted")
		}
	}
	if total != 50*time.Millisecond {
		t.Errorf("intervals cover %v, want 50ms", total)
	}

	var buf strings.Builder
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, needle := range []string{"MediaCodec", "firefox", "intervals", "Running"} {
		if !strings.Contains(out, needle) {
			t.Errorf("export missing %q:\n%s", needle, out)
		}
	}
}

func TestIntervalsOffByDefault(t *testing.T) {
	tr := New(0)
	tr.Register(key(1, "a", "p"), Sleeping, 0)
	tr.Transition(1, Running, 0, 10*time.Millisecond)
	tr.Finish(20 * time.Millisecond)
	if len(tr.Intervals()) != 0 {
		t.Error("intervals recorded without KeepIntervals")
	}
}
