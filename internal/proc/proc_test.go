package proc

import (
	"testing"
	"time"

	"coalqoe/internal/blockio"
	"coalqoe/internal/kswapd"
	"coalqoe/internal/mem"
	"coalqoe/internal/sched"
	"coalqoe/internal/simclock"
	"coalqoe/internal/trace"
	"coalqoe/internal/units"
)

type env struct {
	clock *simclock.Clock
	sch   *sched.Scheduler
	tr    *trace.Tracer
	mem   *mem.Memory
	table *Table
}

func setup(t *testing.T, total units.Bytes) *env {
	t.Helper()
	clock := simclock.New(1)
	tr := trace.New(0)
	s := sched.New(clock, sched.Config{CoreSpeeds: []float64{1, 1}, Tracer: tr})
	m := mem.New(clock, mem.Config{Total: total, KernelReserve: 100 * units.MiB, ZRAMMax: total / 4})
	d := blockio.New(clock, s, blockio.Config{})
	k := kswapd.New(clock, s, m, d, kswapd.Config{})
	tab := NewTable(clock, s, m, d, k, SignalThresholds{})
	return &env{clock: clock, sch: s, tr: tr, mem: m, table: tab}
}

func startCached(e *env, name string, heap units.Bytes) *Process {
	return e.table.Start(Spec{Name: name, Adj: AdjCached, Cached: true, AnonBytes: heap})
}

func TestStartAllocatesHeap(t *testing.T) {
	e := setup(t, units.GiB)
	p := e.table.Start(Spec{Name: "app", Adj: AdjForeground, AnonBytes: 100 * units.MiB, FileWSBytes: 50 * units.MiB})
	e.clock.RunUntil(time.Second)
	if p.AnonPages() != units.PagesOf(100*units.MiB) {
		t.Errorf("AnonPages = %d, want %d", p.AnonPages(), units.PagesOf(100*units.MiB))
	}
	if e.mem.Anon() != units.PagesOf(100*units.MiB) {
		t.Errorf("global anon = %d", e.mem.Anon())
	}
	if p.PSS() != 150*units.MiB {
		t.Errorf("PSS = %v, want 150MiB", p.PSS())
	}
}

func TestSignalLevelsFollowCachedCount(t *testing.T) {
	e := setup(t, 2*units.GiB)
	var procs []*Process
	for i := 0; i < 8; i++ {
		procs = append(procs, startCached(e, name(i), 10*units.MiB))
	}
	e.clock.RunUntil(100 * time.Millisecond)
	if e.table.Level() != Normal {
		t.Fatalf("level = %v with 8 cached, want Normal", e.table.Level())
	}
	e.table.Kill(procs[0], "test") // 7 cached
	e.table.Kill(procs[1], "test") // 6 -> Moderate
	if e.table.Level() != Moderate {
		t.Errorf("level = %v with 6 cached, want Moderate", e.table.Level())
	}
	e.table.Kill(procs[2], "test") // 5 -> Low
	if e.table.Level() != Low {
		t.Errorf("level = %v with 5 cached, want Low", e.table.Level())
	}
	e.table.Kill(procs[3], "test") // 4 -> still Low
	e.table.Kill(procs[4], "test") // 3 -> Critical
	if e.table.Level() != Critical {
		t.Errorf("level = %v with 3 cached, want Critical", e.table.Level())
	}
}

func name(i int) string { return string(rune('a'+i)) + "app" }

func TestSignalsReemittedPeriodically(t *testing.T) {
	e := setup(t, 2*units.GiB)
	var procs []*Process
	for i := 0; i < 6; i++ { // 6 cached -> Moderate immediately
		procs = append(procs, startCached(e, name(i), units.MiB))
	}
	_ = procs
	n := 0
	e.table.Subscribe(func(l Level) {
		if l == Moderate {
			n++
		}
	})
	e.clock.RunUntil(5500 * time.Millisecond)
	if n < 5 {
		t.Errorf("got %d Moderate re-emissions over 5.5s, want >= 5", n)
	}
}

func TestOnTrimDelivered(t *testing.T) {
	e := setup(t, 2*units.GiB)
	var got []Level
	e.table.Start(Spec{Name: "video", Adj: AdjForeground, OnTrim: func(l Level) { got = append(got, l) }})
	for i := 0; i < 7; i++ {
		startCached(e, name(i), units.MiB)
	}
	p := e.table.Find(name(0))
	e.table.Kill(p, "test") // 6 cached -> Moderate
	if len(got) == 0 || got[len(got)-1] != Moderate {
		t.Errorf("OnTrim got %v, want trailing Moderate", got)
	}
}

func TestKillFreesMemory(t *testing.T) {
	e := setup(t, units.GiB)
	p := startCached(e, "bg", 200*units.MiB)
	e.clock.RunUntil(time.Second)
	free := e.mem.Free()
	e.table.Kill(p, "lmkd")
	if e.mem.Free() <= free {
		t.Error("kill did not free memory")
	}
	if !p.Dead() {
		t.Error("process not dead")
	}
	if e.table.Find("bg") != nil {
		t.Error("dead process still findable")
	}
	if len(e.table.Kills()) != 1 || e.table.Kills()[0].Reason != "lmkd" {
		t.Errorf("kill log = %+v", e.table.Kills())
	}
}

func TestKillCandidatesOrder(t *testing.T) {
	e := setup(t, 2*units.GiB)
	e.table.Start(Spec{Name: "fg", Adj: AdjForeground})
	e.table.Start(Spec{Name: "svc", Adj: AdjService})
	a := startCached(e, "olda", units.MiB)
	b := startCached(e, "newb", units.MiB)
	b.Adj = AdjCached + 1 // less important than a
	_ = a

	cands := e.table.KillCandidates(AdjCached)
	if len(cands) != 2 {
		t.Fatalf("got %d candidates, want 2", len(cands))
	}
	if cands[0].Name != "newb" {
		t.Errorf("first victim = %s, want newb (higher adj)", cands[0].Name)
	}
	// With foreground eligible, everything with adj >= 0 qualifies.
	all := e.table.KillCandidates(0)
	if len(all) != 4 {
		t.Errorf("got %d candidates at minAdj=0, want 4", len(all))
	}
	if all[len(all)-1].Name != "fg" {
		t.Errorf("foreground should be last resort, got %s", all[len(all)-1].Name)
	}
}

func TestGrowAnonStallsUnderPressure(t *testing.T) {
	e := setup(t, 512*units.MiB)
	// Fill most of memory with file cache so growth needs reclaim.
	e.mem.FileRead(units.PagesOf(350 * units.MiB))
	p := e.table.Start(Spec{Name: "big", Adj: AdjForeground})
	done := false
	p.GrowAnon(380*units.MiB, func() { done = true })
	e.clock.RunUntil(30 * time.Second)
	if !done {
		t.Fatalf("allocation never completed: %v, anon=%d", e.mem.String(), p.AnonPages())
	}
	if e.mem.DirectReclaims == 0 {
		t.Error("expected the allocation to hit direct reclaim")
	}
}

func TestShrinkAnon(t *testing.T) {
	e := setup(t, units.GiB)
	p := e.table.Start(Spec{Name: "app", Adj: AdjForeground, AnonBytes: 100 * units.MiB})
	e.clock.RunUntil(time.Second)
	p.ShrinkAnon(40 * units.MiB)
	if p.AnonPages() != units.PagesOf(60*units.MiB) {
		t.Errorf("AnonPages = %d after shrink", p.AnonPages())
	}
}

func TestDeadProcessIgnoresGrow(t *testing.T) {
	e := setup(t, units.GiB)
	p := e.table.Start(Spec{Name: "app", Adj: AdjForeground})
	e.table.Kill(p, "test")
	p.GrowAnon(units.MiB, func() { t.Error("grow completed on dead process") })
	e.clock.RunUntil(time.Second)
}

func TestOnKilledFires(t *testing.T) {
	e := setup(t, units.GiB)
	var reason string
	p := e.table.Start(Spec{Name: "app", Adj: AdjForeground, OnKilled: func(r string) { reason = r }})
	e.table.Kill(p, "lowmem")
	if reason != "lowmem" {
		t.Errorf("OnKilled reason = %q", reason)
	}
}

func TestSignalEventRecordsAvailable(t *testing.T) {
	e := setup(t, 2*units.GiB)
	for i := 0; i < 6; i++ {
		startCached(e, name(i), units.MiB)
	}
	sigs := e.table.Signals()
	if len(sigs) == 0 {
		t.Fatal("no signals recorded")
	}
	if sigs[len(sigs)-1].Available <= 0 {
		t.Error("signal did not record available memory")
	}
}

func TestThreadsSpawned(t *testing.T) {
	e := setup(t, units.GiB)
	p := e.table.Start(Spec{Name: "firefox", Adj: AdjForeground, ExtraThreads: []string{"MediaCodec", "Compositor"}})
	if p.Thread("MediaCodec") == nil || p.Thread("Compositor") == nil {
		t.Error("extra threads missing")
	}
	if p.Thread("nope") != nil {
		t.Error("found nonexistent thread")
	}
	if len(p.Threads()) != 3 {
		t.Errorf("Threads() = %d, want 3", len(p.Threads()))
	}
}

func TestLevelString(t *testing.T) {
	if Normal.String() != "Normal" || Critical.String() != "Critical" {
		t.Error("level names wrong")
	}
}

func TestSetCachedTransitions(t *testing.T) {
	e := setup(t, units.GiB)
	p := e.table.Start(Spec{Name: "app", Adj: AdjForeground, AnonBytes: 50 * units.MiB})
	e.clock.RunUntil(time.Second)
	before := e.table.CachedCount()
	p.SetCached(true, AdjCached+10)
	if e.table.CachedCount() != before+1 {
		t.Error("demotion did not grow the cached LRU")
	}
	if p.Adj != AdjCached+10 {
		t.Errorf("Adj = %d", p.Adj)
	}
	p.SetCached(false, AdjForeground)
	if e.table.CachedCount() != before {
		t.Error("promotion did not shrink the cached LRU")
	}
}

func TestOOMKillerPicksLargest(t *testing.T) {
	e := setup(t, units.GiB)
	small := e.table.Start(Spec{Name: "small", Adj: AdjForeground, AnonBytes: 20 * units.MiB})
	big := e.table.Start(Spec{Name: "big", Adj: AdjForeground, AnonBytes: 200 * units.MiB})
	native := e.table.Start(Spec{Name: "daemon", Adj: AdjNative, AnonBytes: 300 * units.MiB})
	e.clock.RunUntil(time.Second)
	e.table.oomKill()
	if !big.Dead() {
		t.Error("OOM killer spared the largest killable process")
	}
	if small.Dead() || native.Dead() {
		t.Error("OOM killer hit the wrong victim")
	}
	kills := e.table.Kills()
	if len(kills) != 1 || kills[0].Reason != "oom" {
		t.Errorf("kill log = %+v", kills)
	}
}

func TestOOMKillerPrefersHighAdj(t *testing.T) {
	e := setup(t, units.GiB)
	fg := e.table.Start(Spec{Name: "fg", Adj: AdjForeground, AnonBytes: 100 * units.MiB})
	cached := e.table.Start(Spec{Name: "bg", Adj: AdjCached, Cached: true, AnonBytes: 80 * units.MiB})
	e.clock.RunUntil(time.Second)
	e.table.oomKill()
	// Similar sizes: the adj shift must tip the badness to the cached app.
	if !cached.Dead() || fg.Dead() {
		t.Errorf("oom victim: cached dead=%v fg dead=%v", cached.Dead(), fg.Dead())
	}
}

func TestAvailThresholdSignals(t *testing.T) {
	e := setup(t, units.GiB)
	// Enough cached apps that the count mechanism stays at Normal; the
	// avail thresholds drive the level in this test.
	for i := 0; i < 10; i++ {
		startCached(e, name(i), units.MiB)
	}
	e.table.Avail = AvailThresholds{
		Moderate: units.PagesOf(400 * units.MiB),
		Low:      units.PagesOf(300 * units.MiB),
		Critical: units.PagesOf(200 * units.MiB),
	}
	e.clock.RunUntil(time.Second)
	if e.table.Level() != Normal {
		t.Fatalf("level = %v with ample memory", e.table.Level())
	}
	// Squeeze available memory below the Moderate threshold.
	e.mem.AllocAnon(e.mem.Free() - units.PagesOf(350*units.MiB))
	e.clock.RunUntil(2 * time.Second) // poll fires
	if e.table.Level() != Moderate {
		t.Errorf("level = %v with avail ~350MiB, want Moderate", e.table.Level())
	}
	e.mem.AllocAnon(units.PagesOf(200 * units.MiB))
	e.clock.RunUntil(3 * time.Second)
	if e.table.Level() < Low {
		t.Errorf("level = %v with avail ~150MiB, want >= Low", e.table.Level())
	}
}

func TestWarmForCoolsOff(t *testing.T) {
	e := setup(t, 2*units.GiB)
	e.table.Start(Spec{
		Name: "warm", Adj: AdjCached, Cached: true,
		AnonBytes: 100 * units.MiB, FileWSBytes: 50 * units.MiB,
		HotAnonFrac: 0.8, WarmFor: 10 * time.Second,
	})
	e.clock.RunUntil(time.Second)
	warmDeficitBase := e.mem.RefaultDeficit()
	_ = warmDeficitBase
	// While warm, the working set is registered: scans rotate.
	e.mem.ScanBatch(1000)
	pWarm := e.mem.Pressure()
	e.clock.RunUntil(15 * time.Second) // past WarmFor
	e.mem.ScanBatch(1000)
	pCold := e.mem.Pressure()
	if pCold >= pWarm {
		t.Errorf("pressure warm=%v cold=%v: cooling should make reclaim easier", pWarm, pCold)
	}
}

func TestRampTimeSpreadsAllocation(t *testing.T) {
	e := setup(t, units.GiB)
	p := e.table.Start(Spec{Name: "ramp", Adj: AdjForeground, AnonBytes: 120 * units.MiB, RampTime: 10 * time.Second})
	e.clock.RunUntil(time.Second)
	early := p.AnonPages()
	if early >= units.PagesOf(120*units.MiB) {
		t.Error("ramped allocation completed immediately")
	}
	e.clock.RunUntil(15 * time.Second)
	if p.AnonPages() != units.PagesOf(120*units.MiB) {
		t.Errorf("ramp ended at %d pages, want full 120MiB", p.AnonPages())
	}
}
