// Package proc models Android processes the way the paper's §2
// describes them: each process has an oom_adj score reflecting its
// priority group, a memory footprint, and — for cached/background
// processes — a position in the least-recently-used list that Android
// uses to generate memory pressure signals.
//
// Memory pressure signals (onTrimMemory) are generated "by tracking the
// number of cached/background processes in the LRU list. Because
// Android tries to aggressively cache processes at all times, a
// decreasing number of cached processes indicates increasing memory
// pressure" (§2 footnote 6). The per-level thresholds are device
// configuration; the Nokia 1 values from the paper (Moderate/Low/
// Critical at 6/5/3 cached processes) are the defaults.
package proc

import (
	"fmt"
	"sort"
	"time"

	"coalqoe/internal/blockio"
	"coalqoe/internal/kswapd"
	"coalqoe/internal/mem"
	"coalqoe/internal/sched"
	"coalqoe/internal/simclock"
	"coalqoe/internal/units"
)

// Level is an onTrimMemory pressure level for foreground apps (§2).
type Level int

// Pressure levels, in increasing severity.
const (
	Normal Level = iota
	Moderate
	Low
	Critical
)

// String names the level as Android does.
func (l Level) String() string {
	switch l {
	case Normal:
		return "Normal"
	case Moderate:
		return "Moderate"
	case Low:
		return "Low"
	case Critical:
		return "Critical"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Standard oom_adj scores by priority group (Android's oom_score_adj
// scale: lower is more important).
const (
	AdjNative     = -1000 // system daemons; never killed here
	AdjForeground = 0
	AdjVisible    = 100
	AdjService    = 500
	AdjCached     = 900 // base for cached apps; LRU position adds to it
)

// SignalThresholds map cached-process counts to pressure levels: the
// level is the most severe whose threshold is >= the live cached count.
type SignalThresholds struct {
	Moderate int // cached count at or below which Moderate fires
	Low      int
	Critical int
}

// DefaultThresholds are the Nokia 1 / Android Go values from the paper.
var DefaultThresholds = SignalThresholds{Moderate: 6, Low: 5, Critical: 3}

// AvailThresholds optionally fire signals from available memory (free +
// cache) sinking below per-level thresholds — the vendor-specific
// customization the paper's Figure 5 observes ("the available memory at
// which different memory events get generated differs across devices,
// reflecting vendor choices"). Zero values disable a level.
type AvailThresholds struct {
	Moderate, Low, Critical units.Pages
}

// SignalEvent is one recorded pressure signal, as SignalCapturer logs it.
type SignalEvent struct {
	At        time.Duration
	Level     Level
	Available units.Pages // free + cached at emission time (Figure 5)
}

// KillEvent records an lmkd (or other) kill.
type KillEvent struct {
	At      time.Duration
	Process string
	Adj     int
	Reason  string
}

// Spec describes a process to start.
type Spec struct {
	Name   string
	Adj    int
	Cached bool
	// AnonBytes is the heap the process allocates at start.
	AnonBytes units.Bytes
	// FileWSBytes is the file-backed working set (code, assets) the
	// process keeps warm.
	FileWSBytes units.Bytes
	// HotAnonFrac is the fraction of the heap that is hot (resists
	// reclaim). Default 0.5.
	HotAnonFrac float64
	// WarmFor keeps a cached process's working set hot for this long
	// after start (recently used apps are not instantly reclaimable);
	// zero means a cached process is cold immediately.
	WarmFor time.Duration
	// RampTime spreads the initial AnonBytes allocation over this
	// duration (real app startups allocate over seconds, giving the
	// reclaim path a chance to keep up). Zero allocates at once.
	RampTime time.Duration
	// Threads to spawn beyond the main thread, by name.
	ExtraThreads []string
	// OnTrim receives pressure level changes (foreground apps).
	OnTrim func(Level)
	// OnKilled fires if the process is killed.
	OnKilled func(reason string)
}

// Process is a live process.
type Process struct {
	Name   string
	Adj    int
	Cached bool

	table     *Table
	anon      units.Pages // logical heap (resident + compressed)
	fileWS    units.Pages
	hotFrac   float64
	warmUntil time.Duration
	main      *sched.Thread
	extras    []*sched.Thread
	dead      bool
	lruSeq    int // larger = more recently used
	onTrim    func(Level)
	onKilled  func(string)
	growing   bool
}

// Main returns the process's main thread.
func (p *Process) Main() *sched.Thread { return p.main }

// Threads returns all live threads (main first).
func (p *Process) Threads() []*sched.Thread {
	out := []*sched.Thread{p.main}
	return append(out, p.extras...)
}

// Thread returns the named extra thread, or nil.
func (p *Process) Thread(name string) *sched.Thread {
	for _, t := range p.extras {
		if t.Key().Name == name {
			return t
		}
	}
	return nil
}

// Dead reports whether the process has been killed.
func (p *Process) Dead() bool { return p.dead }

// AnonPages returns the logical heap size in pages.
func (p *Process) AnonPages() units.Pages { return p.anon }

// PSS approximates the Proportional Set Size dumpsys reports: private
// heap plus the proportionally attributed file-backed mappings (§4.2).
func (p *Process) PSS() units.Bytes { return (p.anon + p.fileWS).Bytes() }

// Table is the process registry plus the pressure-signal generator.
type Table struct {
	clock *simclock.Clock
	sch   *sched.Scheduler
	mem   *mem.Memory
	disk  *blockio.Disk
	kswd  *kswapd.Daemon

	Thresholds SignalThresholds
	// Avail optionally adds available-memory signal thresholds
	// (vendor customization; see AvailThresholds).
	Avail AvailThresholds
	// EmitInterval re-emits the current non-Normal level periodically,
	// matching Android's repeated onTrimMemory delivery under
	// sustained pressure. Default 1s.
	EmitInterval time.Duration
	// OOMKillAfter is how long an allocation may stall below the min
	// watermark before the kernel OOM killer fires. Default 12s.
	OOMKillAfter time.Duration

	procs   []*Process
	level   Level
	lruSeq  int
	signals []SignalEvent
	kills   []KillEvent

	listeners    []func(Level)
	killWatchers []func(*Process, string)
}

// NewTable creates the registry and starts the signal re-emitter.
func NewTable(clock *simclock.Clock, sch *sched.Scheduler, m *mem.Memory, d *blockio.Disk, k *kswapd.Daemon, thresholds SignalThresholds) *Table {
	if thresholds == (SignalThresholds{}) {
		thresholds = DefaultThresholds
	}
	t := &Table{
		clock:        clock,
		sch:          sch,
		mem:          m,
		disk:         d,
		kswd:         k,
		Thresholds:   thresholds,
		EmitInterval: time.Second,
		OOMKillAfter: 12 * time.Second,
	}
	clock.Every(t.EmitInterval, func() {
		if t.level > Normal {
			t.emit(t.level)
		}
	})
	// Available memory moves continuously, so the vendor-threshold
	// path needs polling, not just process-table events.
	clock.Every(250*time.Millisecond, func() {
		if t.Avail != (AvailThresholds{}) {
			t.recompute()
		}
	})
	return t
}

// Subscribe registers a pressure-level listener (receives every emitted
// signal, including periodic re-emissions).
func (t *Table) Subscribe(fn func(Level)) { t.listeners = append(t.listeners, fn) }

// OnKill registers a watcher invoked after any process is killed.
func (t *Table) OnKill(fn func(*Process, string)) {
	t.killWatchers = append(t.killWatchers, fn)
}

// Level returns the current pressure level.
func (t *Table) Level() Level { return t.level }

// Signals returns the recorded signal log.
func (t *Table) Signals() []SignalEvent { return t.signals }

// Kills returns the recorded kill log.
func (t *Table) Kills() []KillEvent { return t.kills }

// Processes returns all live processes.
func (t *Table) Processes() []*Process {
	out := make([]*Process, 0, len(t.procs))
	for _, p := range t.procs {
		if !p.dead {
			out = append(out, p)
		}
	}
	return out
}

// Find returns the live process with the given name, or nil.
func (t *Table) Find(name string) *Process {
	for _, p := range t.procs {
		if !p.dead && p.Name == name {
			return p
		}
	}
	return nil
}

// CachedCount returns the number of live cached processes — the LRU
// length that drives signal generation.
func (t *Table) CachedCount() int {
	n := 0
	for _, p := range t.procs {
		if !p.dead && p.Cached {
			n++
		}
	}
	return n
}

// Start launches a process: spawns its threads, allocates its heap
// (possibly stalling in direct reclaim), and warms its file working
// set. The returned process is usable immediately; memory fills in
// asynchronously on the simulated clock.
func (t *Table) Start(spec Spec) *Process {
	if spec.HotAnonFrac <= 0 {
		spec.HotAnonFrac = 0.5
	}
	p := &Process{
		Name:     spec.Name,
		Adj:      spec.Adj,
		Cached:   spec.Cached,
		table:    t,
		hotFrac:  spec.HotAnonFrac,
		onTrim:   spec.OnTrim,
		onKilled: spec.OnKilled,
	}
	if spec.WarmFor > 0 {
		p.warmUntil = t.clock.Now() + spec.WarmFor
		// Re-derive the working set once the process cools off.
		t.clock.Schedule(spec.WarmFor, p.syncWorkingSet)
	}
	p.main = t.sch.Spawn("main", spec.Name, sched.ClassFair, 0)
	for _, name := range spec.ExtraThreads {
		p.extras = append(p.extras, t.sch.Spawn(name, spec.Name, sched.ClassFair, 0))
	}
	t.procs = append(t.procs, p)
	t.touchLRU(p)
	if spec.OnTrim != nil {
		t.Subscribe(func(l Level) {
			if !p.dead {
				p.onTrim(l)
			}
		})
	}
	if spec.FileWSBytes > 0 {
		p.fileWS = units.PagesOf(spec.FileWSBytes)
		t.mem.FileRead(p.fileWS)
	}
	if spec.AnonBytes > 0 {
		if spec.RampTime > 0 {
			const steps = 12
			chunk := spec.AnonBytes / steps
			for i := 0; i < steps; i++ {
				at := time.Duration(i) * spec.RampTime / steps
				t.clock.Schedule(at, func() { p.GrowAnon(chunk, nil) })
			}
			p.GrowAnon(spec.AnonBytes-steps*chunk, nil)
		} else {
			p.GrowAnon(spec.AnonBytes, nil)
		}
	}
	p.syncWorkingSet()
	t.recompute()
	return p
}

// touchLRU marks p most-recently-used.
func (t *Table) touchLRU(p *Process) {
	t.lruSeq++
	p.lruSeq = t.lruSeq
}

// syncWorkingSet registers the process's hot pages with the memory
// model.
func (p *Process) syncWorkingSet() {
	if p.dead {
		return
	}
	hotAnon := units.Pages(float64(p.anon) * p.hotFrac)
	hotFile := p.fileWS
	if p.Cached && p.table.clock.Now() >= p.warmUntil {
		// Idle cached apps: their pages are cold and reclaimable.
		hotAnon, hotFile = 0, 0
	}
	p.table.mem.SetWorkingSet(p.Name, mem.WorkingSet{Anon: hotAnon, File: hotFile})
}

// GrowAnon grows the heap by b bytes, going through the kernel
// allocation path: the fast path takes free pages; a watermark breach
// kicks kswapd and falls back to direct reclaim on the process's main
// thread, stalling it. An allocation that cannot make progress for
// OOMKillAfter invokes the kernel OOM killer. onDone (may be nil)
// fires when fully allocated.
func (p *Process) GrowAnon(b units.Bytes, onDone func()) {
	if p.dead {
		return
	}
	need := units.PagesOf(b)
	t := p.table
	stalledSince := time.Duration(-1)
	var step func()
	step = func() {
		if p.dead {
			return
		}
		if need > 0 && t.mem.BelowMin() {
			if stalledSince < 0 {
				stalledSince = t.clock.Now()
			} else if t.clock.Now()-stalledSince > t.OOMKillAfter {
				stalledSince = -1
				t.oomKill()
			}
		} else {
			stalledSince = -1
		}
		out := t.mem.AllocAnon(need)
		p.anon += out.Granted
		need -= out.Granted
		if out.NeedDirectReclaim == 0 {
			p.syncWorkingSet()
			if onDone != nil {
				onDone()
			}
			return
		}
		if t.kswd != nil {
			t.kswd.Kick()
		}
		kswapd.DirectReclaim(t.clock, p.main, t.mem, t.disk, kswapd.Config{}, out.NeedDirectReclaim, func(freed units.Pages) {
			if p.dead {
				return
			}
			got := t.mem.ForceAllocAnon(out.NeedDirectReclaim)
			p.anon += got
			need -= got
			if need > 0 {
				// Stalled allocation: retry after a short backoff, as
				// the kernel would keep the thread in the allocator.
				t.clock.Schedule(10*time.Millisecond, step)
				return
			}
			p.syncWorkingSet()
			if onDone != nil {
				onDone()
			}
		})
	}
	step()
}

// SetCached moves the process between the foreground and the cached
// LRU (the user switched apps). Going cached cools the working set
// (after any warm grace) and makes the process killable at the given
// adj; coming foreground rewarms it.
func (p *Process) SetCached(cached bool, adj int) {
	if p.dead {
		return
	}
	p.Cached = cached
	p.Adj = adj
	p.table.touchLRU(p)
	p.syncWorkingSet()
	p.table.recompute()
}

// ShrinkAnon releases b bytes of heap (e.g. an app trimming caches in
// response to onTrimMemory).
func (p *Process) ShrinkAnon(b units.Bytes) {
	if p.dead {
		return
	}
	give := units.PagesOf(b)
	if give > p.anon {
		give = p.anon
	}
	p.anon -= give
	p.table.mem.FreeAnonProportional(give)
	p.syncWorkingSet()
}

// Kill terminates the process: threads die, the heap is freed, the
// file working set goes cold, and OnKilled fires.
func (t *Table) Kill(p *Process, reason string) {
	if p.dead {
		return
	}
	p.dead = true
	t.sch.KillProcess(p.Name)
	t.mem.FreeAnonProportional(p.anon)
	t.mem.DropFileClean(p.fileWS)
	t.mem.RemoveWorkingSet(p.Name)
	p.anon = 0
	p.fileWS = 0
	t.kills = append(t.kills, KillEvent{At: t.clock.Now(), Process: p.Name, Adj: p.Adj, Reason: reason})
	if p.onKilled != nil {
		p.onKilled(reason)
	}
	for _, fn := range t.killWatchers {
		fn(p, reason)
	}
	t.recompute()
}

// KillCandidates returns live killable processes ordered by descending
// oom_adj (then least-recently-used first), restricted to adj >= minAdj.
// This is the order lmkd picks victims in (§2).
func (t *Table) KillCandidates(minAdj int) []*Process {
	var out []*Process
	for _, p := range t.procs {
		if !p.dead && p.Adj >= minAdj {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Adj != out[j].Adj {
			return out[i].Adj > out[j].Adj
		}
		return out[i].lruSeq < out[j].lruSeq
	})
	return out
}

// oomAdjBadnessDivisor scales the oom_adj bonus in the badness score:
// each adj point is worth Total/5000 pages, i.e. the full adj range
// (±1000) can swing badness by ±20% of RAM, mirroring the kernel's
// oom_score_adj normalization. It is a dimensionless scale factor,
// not a page count.
const oomAdjBadnessDivisor = 5000

// oomKill emulates the kernel OOM killer: among killable processes it
// picks the highest "badness" — dominated by memory size, shifted by
// oom_adj — and kills it. The foreground video client, being the
// largest allocation on an entry-level device, is the usual victim.
func (t *Table) oomKill() {
	var victim *Process
	var worst units.Pages = -1
	for _, p := range t.procs {
		if p.dead || p.Adj < AdjForeground {
			continue
		}
		badness := p.anon + units.Pages(p.Adj)*t.mem.Total()/oomAdjBadnessDivisor
		if badness > worst {
			worst = badness
			victim = p
		}
	}
	if victim != nil {
		t.Kill(victim, "oom")
	}
}

// recompute re-derives the pressure level from the cached-process count
// and emits a signal on change.
func (t *Table) recompute() {
	count := t.CachedCount()
	level := Normal
	switch {
	case count <= t.Thresholds.Critical:
		level = Critical
	case count <= t.Thresholds.Low:
		level = Low
	case count <= t.Thresholds.Moderate:
		level = Moderate
	}
	if avail := t.mem.Available(); t.Avail != (AvailThresholds{}) {
		switch {
		case t.Avail.Critical > 0 && avail <= t.Avail.Critical:
			level = maxLevel(level, Critical)
		case t.Avail.Low > 0 && avail <= t.Avail.Low:
			level = maxLevel(level, Low)
		case t.Avail.Moderate > 0 && avail <= t.Avail.Moderate:
			level = maxLevel(level, Moderate)
		}
	}
	if level != t.level {
		t.level = level
		t.emit(level)
	}
}

func maxLevel(a, b Level) Level {
	if a > b {
		return a
	}
	return b
}

func (t *Table) emit(l Level) {
	t.signals = append(t.signals, SignalEvent{At: t.clock.Now(), Level: l, Available: t.mem.Available()})
	for _, fn := range t.listeners {
		fn(l)
	}
}
