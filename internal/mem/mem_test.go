package mem

import (
	"testing"
	"testing/quick"
	"time"

	"coalqoe/internal/simclock"
	"coalqoe/internal/units"
)

func newMem(t *testing.T) (*simclock.Clock, *Memory) {
	t.Helper()
	clock := simclock.New(1)
	m := New(clock, Config{
		Total:         1 * units.GiB,
		KernelReserve: 200 * units.MiB,
		ZRAMMax:       256 * units.MiB,
		ZRAMRatio:     2.8,
	})
	return clock, m
}

func TestInitialState(t *testing.T) {
	_, m := newMem(t)
	if m.Total() != units.PagesOf(units.GiB) {
		t.Errorf("Total = %d pages", m.Total())
	}
	wantFree := units.PagesOf(units.GiB) - units.PagesOf(200*units.MiB)
	if m.Free() != wantFree {
		t.Errorf("Free = %d, want %d", m.Free(), wantFree)
	}
	if m.Pressure() != 0 {
		t.Errorf("initial Pressure = %v, want 0", m.Pressure())
	}
	min, low, high := m.Watermarks()
	if !(min < low && low < high) {
		t.Errorf("watermarks not ordered: %d %d %d", min, low, high)
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	_, m := newMem(t)
	before := m.Free()
	out := m.AllocAnon(units.PagesOf(100 * units.MiB))
	if out.NeedDirectReclaim != 0 {
		t.Fatalf("unexpected direct reclaim for small alloc: %+v", out)
	}
	if m.Anon() != out.Granted {
		t.Errorf("Anon = %d, want %d", m.Anon(), out.Granted)
	}
	m.FreeAnon(out.Granted)
	if m.Free() != before {
		t.Errorf("Free = %d after round trip, want %d", m.Free(), before)
	}
}

func TestAllocHitsDirectReclaim(t *testing.T) {
	_, m := newMem(t)
	// Exhaust memory down to the min watermark.
	out := m.AllocAnon(m.Free())
	if out.NeedDirectReclaim == 0 {
		t.Fatal("allocating all free memory should need direct reclaim")
	}
	min, _, _ := m.Watermarks()
	if m.Free() != min {
		t.Errorf("Free = %d after blocked alloc, want min watermark %d", m.Free(), min)
	}
	if m.DirectReclaims != 1 {
		t.Errorf("DirectReclaims = %d, want 1", m.DirectReclaims)
	}
}

func TestFileReadAndUtilization(t *testing.T) {
	_, m := newMem(t)
	got := m.FileRead(units.PagesOf(300 * units.MiB))
	if got != units.PagesOf(300*units.MiB) {
		t.Fatalf("FileRead granted %d pages", got)
	}
	// Cached pages still count as available (free + cached).
	if m.Available() != m.Free()+m.FileClean() {
		t.Error("Available != free + cached")
	}
	// Utilization counts kernel reserve only (file cache is available).
	u := m.Utilization()
	want := float64(units.PagesOf(200*units.MiB)) / float64(m.Total())
	if u < want-0.01 || u > want+0.01 {
		t.Errorf("Utilization = %v, want ~%v", u, want)
	}
}

func TestFileReadTruncatedNearMin(t *testing.T) {
	_, m := newMem(t)
	m.AllocAnon(m.Free() - m.wmMin - 100)
	got := m.FileRead(1000)
	if got != 100 {
		t.Errorf("FileRead near min granted %d, want 100", got)
	}
}

func TestScanBatchColdCleanDrops(t *testing.T) {
	clock, m := newMem(t)
	_ = clock
	m.FileRead(units.PagesOf(300 * units.MiB))
	// No working sets: everything is cold, so reclaim is ~100%.
	res := m.ScanBatch(1000)
	if res.Scanned != 1000 {
		t.Errorf("Scanned = %d", res.Scanned)
	}
	if res.ReclaimedClean != 1000 {
		t.Errorf("ReclaimedClean = %d, want 1000 (all cold clean)", res.ReclaimedClean)
	}
	if m.Pressure() > 1 {
		t.Errorf("Pressure = %v after perfectly efficient scan, want ~0", m.Pressure())
	}
}

func TestScanBatchHotPagesResist(t *testing.T) {
	_, m := newMem(t)
	m.FileRead(units.PagesOf(100 * units.MiB))
	// The whole cache is someone's working set.
	m.SetWorkingSet("app", WorkingSet{File: units.PagesOf(100 * units.MiB)})
	res := m.ScanBatch(1000)
	// Only HotFileReclaimProb (35%) of hot file pages reclaim.
	if res.ReclaimedClean < 250 || res.ReclaimedClean > 450 {
		t.Errorf("ReclaimedClean = %d, want ~350", res.ReclaimedClean)
	}
	if p := m.Pressure(); p < 50 {
		t.Errorf("Pressure = %v, want elevated (hot pages resist reclaim)", p)
	}
	if m.TotalRefaults == 0 {
		t.Error("evicting hot pages should record refaults")
	}
	// A fully hot *anonymous* pool resists much harder: P approaches
	// the 95+ regime where lmkd may kill foreground apps (§2).
	clock2 := simclock.New(2)
	m2 := New(clock2, Config{Total: units.GiB, KernelReserve: 100 * units.MiB, ZRAMMax: 256 * units.MiB})
	m2.AllocAnon(units.PagesOf(200 * units.MiB))
	m2.SetWorkingSet("app", WorkingSet{Anon: units.PagesOf(200 * units.MiB)})
	m2.ScanBatch(1000)
	if p := m2.Pressure(); p < 90 {
		t.Errorf("anon pool pressure = %v, want >= 90", p)
	}
}

func TestScanBatchDirtyQueuesWriteback(t *testing.T) {
	_, m := newMem(t)
	m.FileRead(units.PagesOf(100 * units.MiB))
	m.MarkDirty(units.PagesOf(100 * units.MiB))
	res := m.ScanBatch(500)
	if res.DirtyQueued == 0 {
		t.Fatal("no dirty pages queued")
	}
	if res.FreedNow != 0 {
		t.Errorf("dirty reclaim freed %d pages immediately", res.FreedNow)
	}
	wb := m.UnderWriteback()
	free := m.Free()
	m.CompleteWriteback(res.DirtyQueued)
	if m.UnderWriteback() != wb-res.DirtyQueued {
		t.Error("writeback pool not drained")
	}
	if m.Free() != free+res.DirtyQueued {
		t.Error("completed writeback did not free pages")
	}
}

func TestScanBatchAnonCompresses(t *testing.T) {
	_, m := newMem(t)
	m.AllocAnon(units.PagesOf(400 * units.MiB))
	freeBefore := m.Free()
	res := m.ScanBatch(2800)
	if res.AnonCompressed == 0 {
		t.Fatal("no anon pages compressed")
	}
	if m.ZRAMStored() != res.AnonCompressed {
		t.Errorf("ZRAMStored = %d, want %d", m.ZRAMStored(), res.AnonCompressed)
	}
	// Compression frees (1 - 1/ratio) of the pages.
	wantGain := units.Pages(float64(res.AnonCompressed) * (1 - 1/2.8))
	gain := m.Free() - freeBefore
	if gain < wantGain-5 || gain > wantGain+5 {
		t.Errorf("free gain = %d, want ~%d", gain, wantGain)
	}
}

func TestZRAMCapLimitsCompression(t *testing.T) {
	clock := simclock.New(1)
	m := New(clock, Config{
		Total:         1 * units.GiB,
		KernelReserve: 100 * units.MiB,
		ZRAMMax:       units.PageSize * 100, // tiny zram
		ZRAMRatio:     2.0,
	})
	m.AllocAnon(units.PagesOf(500 * units.MiB))
	res := m.ScanBatch(10000)
	if res.AnonCompressed > 200 {
		t.Errorf("compressed %d logical pages into a 100-page zram at 2.0x", res.AnonCompressed)
	}
	// Once full, further scans reclaim no anon.
	m.ScanBatch(10000)
	res3 := m.ScanBatch(10000)
	if res3.AnonCompressed != 0 {
		t.Errorf("zram over capacity: compressed %d more", res3.AnonCompressed)
	}
	if p := m.Pressure(); p < 90 {
		t.Errorf("Pressure = %v with unreclaimable anon, want >90", p)
	}
}

func TestZRAMDisabled(t *testing.T) {
	clock := simclock.New(1)
	m := New(clock, Config{Total: units.GiB, KernelReserve: 100 * units.MiB})
	m.AllocAnon(units.PagesOf(300 * units.MiB))
	res := m.ScanBatch(1000)
	if res.AnonCompressed != 0 {
		t.Errorf("compressed %d pages with zram disabled", res.AnonCompressed)
	}
}

func TestSwapInAnon(t *testing.T) {
	_, m := newMem(t)
	m.AllocAnon(units.PagesOf(400 * units.MiB))
	m.ScanBatch(5000)
	stored := m.ZRAMStored()
	if stored == 0 {
		t.Fatal("nothing compressed")
	}
	anonBefore := m.Anon()
	got := m.SwapInAnon(100)
	if got != 100 {
		t.Fatalf("SwapInAnon = %d, want 100", got)
	}
	if m.Anon() != anonBefore+100 {
		t.Error("anon not restored")
	}
	if m.ZRAMStored() != stored-100 {
		t.Error("zram not drained")
	}
	if m.SwapIns() != 100 {
		t.Errorf("SwapIns = %d", m.SwapIns())
	}
}

func TestPressureWindowDecays(t *testing.T) {
	clock, m := newMem(t)
	m.FileRead(units.PagesOf(50 * units.MiB))
	m.SetWorkingSet("app", WorkingSet{File: units.PagesOf(50 * units.MiB)})
	m.ScanBatch(1000)
	if m.Pressure() < 50 {
		t.Fatalf("Pressure = %v, want high", m.Pressure())
	}
	// Advance past the window with no scan activity.
	clock.Schedule(2*time.Second, func() {})
	clock.Run()
	if m.Pressure() != 0 {
		t.Errorf("Pressure = %v after idle window, want 0", m.Pressure())
	}
}

func TestRefaultDeficit(t *testing.T) {
	_, m := newMem(t)
	m.SetWorkingSet("app", WorkingSet{File: 1000})
	if d := m.RefaultDeficit(); d != 1 {
		t.Errorf("deficit = %v with empty cache, want 1", d)
	}
	m.FileRead(500)
	if d := m.RefaultDeficit(); d != 0.5 {
		t.Errorf("deficit = %v, want 0.5", d)
	}
	m.FileRead(500)
	if d := m.RefaultDeficit(); d != 0 {
		t.Errorf("deficit = %v, want 0", d)
	}
	m.RemoveWorkingSet("app")
	if d := m.RefaultDeficit(); d != 0 {
		t.Errorf("deficit = %v with no working sets, want 0", d)
	}
}

func TestFreeAnonSpillsToZRAM(t *testing.T) {
	_, m := newMem(t)
	m.AllocAnon(units.PagesOf(300 * units.MiB))
	m.ScanBatch(20000) // compress a lot
	stored := m.ZRAMStored()
	if stored == 0 {
		t.Fatal("nothing compressed")
	}
	// Free more than resident anon: the remainder comes out of zRAM.
	resident := m.Anon()
	m.FreeAnon(resident + 500)
	if m.Anon() != 0 {
		t.Errorf("Anon = %d, want 0", m.Anon())
	}
	if m.ZRAMStored() != stored-500 {
		t.Errorf("ZRAMStored = %d, want %d", m.ZRAMStored(), stored-500)
	}
}

// Property: the page-accounting invariant holds under arbitrary
// operation sequences (the internal check() would panic otherwise).
func TestAccountingInvariantProperty(t *testing.T) {
	f := func(ops []uint8, amounts []uint16) bool {
		clock := simclock.New(3)
		m := New(clock, Config{
			Total:         256 * units.MiB,
			KernelReserve: 32 * units.MiB,
			ZRAMMax:       64 * units.MiB,
			ZRAMRatio:     2.5,
		})
		for i, op := range ops {
			var amt units.Pages = 64
			if i < len(amounts) {
				amt = units.Pages(amounts[i]%4096) + 1
			}
			switch op % 8 {
			case 0:
				m.AllocAnon(amt)
			case 1:
				m.FreeAnon(amt)
			case 2:
				m.FileRead(amt)
			case 3:
				m.MarkDirty(amt)
			case 4:
				m.ScanBatch(amt)
			case 5:
				m.CompleteWriteback(amt)
			case 6:
				m.SwapInAnon(amt)
			case 7:
				m.DropFileClean(amt)
			}
			if m.Free() < 0 || m.Anon() < 0 || m.FileClean() < 0 || m.FileDirty() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPressureFormulaMatchesPaper(t *testing.T) {
	// P = (1 - R/S) * 100: with 1000 scanned and 250 reclaimed, P = 75.
	clock, m := newMem(t)
	_ = clock
	m.noteScan(1000, 250)
	if p := m.Pressure(); p != 75 {
		t.Errorf("P = %v, want 75", p)
	}
}

func TestAnonCompressedFraction(t *testing.T) {
	_, m := newMem(t)
	if m.AnonCompressedFraction() != 0 {
		t.Error("fraction should be 0 with no anon")
	}
	m.AllocAnon(1000)
	m.ScanBatch(500)
	f := m.AnonCompressedFraction()
	if f <= 0 || f >= 1 {
		t.Errorf("fraction = %v, want in (0,1)", f)
	}
}

func TestNewPanicsOnBadReserve(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic when reserve >= total")
		}
	}()
	New(simclock.New(1), Config{Total: units.MiB, KernelReserve: 2 * units.MiB})
}

func TestBeginFlushAndCompleteClean(t *testing.T) {
	_, m := newMem(t)
	m.FileRead(units.PagesOf(100 * units.MiB))
	m.MarkDirty(units.PagesOf(40 * units.MiB))
	dirty := m.FileDirty()
	got := m.BeginFlush(dirty)
	if got != dirty {
		t.Fatalf("BeginFlush = %d, want %d", got, dirty)
	}
	if m.FileDirty() != 0 || m.UnderWriteback() != dirty {
		t.Error("flush did not move pages to writeback")
	}
	clean := m.FileClean()
	m.CompleteFlushClean(dirty)
	if m.FileClean() != clean+dirty {
		t.Error("flushed pages did not return to the clean cache")
	}
	if m.UnderWriteback() != 0 {
		t.Error("writeback pool not drained")
	}
}

func TestFreeAnonProportional(t *testing.T) {
	_, m := newMem(t)
	m.AllocAnon(units.PagesOf(300 * units.MiB))
	m.ScanBatch(30000) // compress a chunk
	stored := m.ZRAMStored()
	if stored == 0 {
		t.Skip("nothing compressed")
	}
	anon := m.Anon()
	frac := m.AnonCompressedFraction()
	m.FreeAnonProportional(1000)
	wantZram := stored - units.Pages(1000*frac)
	if diff := m.ZRAMStored() - wantZram; diff < -5 || diff > 5 {
		t.Errorf("ZRAMStored = %d, want ~%d", m.ZRAMStored(), wantZram)
	}
	if m.Anon() >= anon {
		t.Error("resident anon did not shrink")
	}
}

func TestNoSwapSkipsAnonLRU(t *testing.T) {
	clock := simclock.New(1)
	m := New(clock, Config{Total: units.GiB, KernelReserve: 100 * units.MiB}) // no zram
	m.AllocAnon(units.PagesOf(400 * units.MiB))
	m.FileRead(units.PagesOf(50 * units.MiB))
	res := m.ScanBatch(5000)
	if res.AnonCompressed != 0 {
		t.Error("anon reclaimed without swap")
	}
	// Scanned must only count the file pool: with 12.8k file pages all
	// cold, the 5000-page scan hits only file pages and reclaims them.
	if res.ReclaimedClean != res.Scanned {
		t.Errorf("scanned %d but reclaimed %d: anon LRU was scanned without swap",
			res.Scanned, res.ReclaimedClean)
	}
	// P stays low: the kernel is not wasting scans on unswappable anon.
	if p := m.Pressure(); p > 10 {
		t.Errorf("P = %v for a no-swap device with a reclaimable cache", p)
	}
}

func TestWatermarkOrdering(t *testing.T) {
	_, m := newMem(t)
	min, low, high := m.Watermarks()
	if !(min > 0 && min < low && low < high && high < m.Total()) {
		t.Errorf("watermarks: min=%d low=%d high=%d total=%d", min, low, high, m.Total())
	}
	if !m.AboveHigh() {
		t.Error("fresh memory should be above the high watermark")
	}
}
