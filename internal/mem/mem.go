// Package mem models the physical memory of an Android device at the
// granularity the paper's §2 background describes: 4 KiB pages split
// into free pages and used pages, with used pages divided into cached
// (file-backed, clean or dirty) and anonymous pages, plus a kernel
// reserve and a zRAM compressed swap space.
//
// The package supplies the mechanics that the kernel daemons build on:
//
//   - allocation/free of anonymous memory with watermark checks and a
//     direct-reclaim request when free memory would fall below min,
//   - page-cache fill and dirtying,
//   - LRU-ish scan/reclaim batches (clean-file drop, dirty-file
//     writeback hand-off, anonymous compression into zRAM),
//   - the memory-pressure estimate the paper gives for lmkd:
//     P = (1 − R/S) · 100 over a sliding window, where R and S are
//     reclaimed and scanned page counts (§2 "Killing of processes"),
//   - a refault (thrashing) signal: when the resident page cache falls
//     below the sum of registered file working sets, processes must
//     re-read recently evicted pages from storage (§2 "Direct reclaim
//     and thrashing").
//
// The model is intentionally global (one zone, one LRU): the paper's
// effects depend on aggregate occupancy and reclaim efficiency, not on
// per-zone detail.
package mem

import (
	"fmt"
	"time"

	"coalqoe/internal/simclock"
	"coalqoe/internal/telemetry"
	"coalqoe/internal/units"
)

// Config sizes a Memory.
type Config struct {
	// Total is the physical RAM size (e.g. 1 GiB for a Nokia 1).
	Total units.Bytes
	// KernelReserve is pinned kernel memory, never reclaimable.
	KernelReserve units.Bytes
	// ZRAMMax is the maximum physical memory zRAM may occupy.
	// Zero disables zRAM (anonymous pages then cannot be reclaimed).
	ZRAMMax units.Bytes
	// ZRAMRatio is the compression ratio (stored/physical); typical
	// LZ4 ratios on app heaps are ~2.5–3.
	ZRAMRatio float64
	// PressureWindow is the sliding window for the P estimate.
	// Defaults to 1s.
	PressureWindow time.Duration
	// HotAnonReclaimProb is the probability that a scanned hot
	// working-set *anonymous* page is reclaimed anyway. It caps the
	// pressure estimate near (1 − p) · 100 for an anon-dominated LRU,
	// so it must sit below 0.05 for the P ≥ 95 foreground-kill regime
	// (§2) to be reachable. Defaults to 0.04.
	HotAnonReclaimProb float64
	// HotFileReclaimProb is the same for hot *file* pages. Kernels of
	// the era evicted executable/code pages far too eagerly under
	// pressure (the classic Android thrashing failure); evicted hot
	// file pages refault from storage. Defaults to 0.35.
	HotFileReclaimProb float64
	// FileScanBias weights file pages over anonymous pages in the scan
	// draw, like the kernel's swappiness preferring page-cache
	// reclaim. Values > 1 evict file (code/asset) pages sooner, which
	// is what sends a pressured foreground app into refault I/O.
	// Default 2.5.
	FileScanBias float64
	// WatermarkMinFrac/LowFrac/HighFrac set watermarks as fractions of
	// total. Defaults: 0.02 / 0.04 / 0.06 (Android raises the stock
	// kernel watermarks via extra_free_kbytes).
	WatermarkMinFrac, WatermarkLowFrac, WatermarkHighFrac float64
}

func (c *Config) applyDefaults() {
	if c.PressureWindow <= 0 {
		c.PressureWindow = time.Second
	}
	if c.ZRAMRatio <= 1 {
		c.ZRAMRatio = 2.8
	}
	if c.HotAnonReclaimProb <= 0 {
		c.HotAnonReclaimProb = 0.04
	}
	if c.HotFileReclaimProb <= 0 {
		c.HotFileReclaimProb = 0.35
	}
	if c.FileScanBias <= 0 {
		c.FileScanBias = 2.5
	}
	if c.WatermarkMinFrac <= 0 {
		c.WatermarkMinFrac = 0.02
	}
	if c.WatermarkLowFrac <= 0 {
		c.WatermarkLowFrac = 0.04
	}
	if c.WatermarkHighFrac <= 0 {
		c.WatermarkHighFrac = 0.06
	}
}

// WorkingSet registers how much memory an active process keeps hot.
// Hot pages resist reclaim and, when evicted anyway, refault.
type WorkingSet struct {
	Anon units.Pages // hot anonymous pages
	File units.Pages // hot file-backed pages (code, assets)
}

// ScanResult reports the outcome of one reclaim scan batch.
type ScanResult struct {
	Scanned units.Pages
	// ReclaimedClean pages were dropped to the free list immediately.
	ReclaimedClean units.Pages
	// DirtyQueued pages moved to the under-writeback pool; the caller
	// must submit the disk writes and call CompleteWriteback.
	DirtyQueued units.Pages
	// AnonCompressed pages were moved into zRAM; the corresponding
	// physical pages freed are included in FreedNow.
	AnonCompressed units.Pages
	// FreedNow is the number of physical pages added to the free list
	// by this batch (clean drops + the net gain from compression).
	FreedNow units.Pages
}

// Reclaimed returns the pages counted as reclaimed for the pressure
// formula: everything the scan managed to take off the LRU.
func (r ScanResult) Reclaimed() units.Pages {
	return r.ReclaimedClean + r.DirtyQueued + r.AnonCompressed
}

// AllocOutcome is the result of an anonymous allocation attempt.
type AllocOutcome struct {
	// Granted pages were allocated immediately.
	Granted units.Pages
	// NeedDirectReclaim is the page shortfall the caller must reclaim
	// synchronously (blocking its thread) before the allocation can
	// complete. Zero when the fast path succeeded.
	NeedDirectReclaim units.Pages
}

type scanSample struct {
	at                 time.Duration
	scanned, reclaimed units.Pages
}

// Memory is the physical-memory model. Not safe for concurrent use.
type Memory struct {
	clock *simclock.Clock
	cfg   Config

	total     units.Pages
	free      units.Pages
	fileClean units.Pages
	fileDirty units.Pages
	writeback units.Pages // dirty pages queued to disk, still occupying RAM
	anon      units.Pages
	kernel    units.Pages

	zramStored units.Pages // logical (uncompressed) pages held in zRAM
	zramMax    units.Pages // physical cap

	wmMin, wmLow, wmHigh units.Pages

	workingSets map[string]WorkingSet
	// Cached sums over workingSets, maintained on Set/Remove so the
	// per-scan hot path never iterates the map.
	wsAnon, wsFile units.Pages

	// window[winHead:] is the live pressure window; winScanned and
	// winReclaimed are running sums over it, so Pressure() is O(1) and
	// trimming advances the head instead of shifting the slice.
	window                   []scanSample
	winHead                  int
	winScanned, winReclaimed units.Pages
	swapIns                  units.Pages // total pages decompressed back out of zRAM

	// cumulative counters (vmstat-style)
	TotalScanned   units.Pages
	TotalReclaimed units.Pages
	TotalRefaults  units.Pages
	DirectReclaims int

	// telemetry instruments; nil (free no-ops) until Instrument is
	// called.
	tmPgscan, tmPgsteal, tmRefaults, tmAllocStalls *telemetry.Counter
}

// New builds a Memory. All of the configured total except the kernel
// reserve starts free.
func New(clock *simclock.Clock, cfg Config) *Memory {
	cfg.applyDefaults()
	total := units.PagesOf(cfg.Total)
	kernel := units.PagesOf(cfg.KernelReserve)
	if kernel >= total {
		panic(fmt.Sprintf("mem: kernel reserve %v >= total %v", cfg.KernelReserve, cfg.Total))
	}
	m := &Memory{
		clock:       clock,
		cfg:         cfg,
		total:       total,
		free:        total - kernel,
		kernel:      kernel,
		zramMax:     units.PagesOf(cfg.ZRAMMax),
		wmMin:       units.Pages(float64(total) * cfg.WatermarkMinFrac),
		wmLow:       units.Pages(float64(total) * cfg.WatermarkLowFrac),
		wmHigh:      units.Pages(float64(total) * cfg.WatermarkHighFrac),
		workingSets: make(map[string]WorkingSet),
	}
	return m
}

// Accessors.

// Total returns physical RAM in pages.
func (m *Memory) Total() units.Pages { return m.total }

// Free returns the free-list size.
func (m *Memory) Free() units.Pages { return m.free }

// FileClean returns clean page-cache pages.
func (m *Memory) FileClean() units.Pages { return m.fileClean }

// FileDirty returns dirty page-cache pages not yet queued for writeback.
func (m *Memory) FileDirty() units.Pages { return m.fileDirty }

// UnderWriteback returns pages queued to disk but still resident.
func (m *Memory) UnderWriteback() units.Pages { return m.writeback }

// Anon returns anonymous pages.
func (m *Memory) Anon() units.Pages { return m.anon }

// ZRAMStored returns the logical pages compressed into zRAM.
func (m *Memory) ZRAMStored() units.Pages { return m.zramStored }

// ZRAMPhysical returns the physical pages zRAM occupies.
func (m *Memory) ZRAMPhysical() units.Pages {
	return units.Pages(float64(m.zramStored)/m.cfg.ZRAMRatio + 0.5)
}

// SwapIns returns the cumulative pages swapped back in from zRAM.
func (m *Memory) SwapIns() units.Pages { return m.swapIns }

// Available returns free + cached bytes, the paper's §3 definition of
// available memory ("the sum of free and cached bytes").
func (m *Memory) Available() units.Pages { return m.free + m.fileClean + m.fileDirty }

// Utilization returns 1 − available/total, the RAM-utilization measure
// of Figure 2.
func (m *Memory) Utilization() float64 {
	return 1 - float64(m.Available())/float64(m.total)
}

// Watermarks returns (min, low, high) in pages.
func (m *Memory) Watermarks() (min, low, high units.Pages) { return m.wmMin, m.wmLow, m.wmHigh }

// BelowLow reports whether kswapd should be running.
func (m *Memory) BelowLow() bool { return m.free < m.wmLow }

// BelowMin reports whether allocations must direct-reclaim.
func (m *Memory) BelowMin() bool { return m.free < m.wmMin }

// AboveHigh reports whether kswapd may stop.
func (m *Memory) AboveHigh() bool { return m.free >= m.wmHigh }

// check panics if the page accounting invariant breaks; used in tests
// and cheap enough to run always.
func (m *Memory) check() {
	sum := m.free + m.fileClean + m.fileDirty + m.writeback + m.anon + m.kernel + m.ZRAMPhysical()
	// Compression rounding may leave a page of slack.
	diff := sum - m.total
	if diff < -1 || diff > 1 {
		panic(fmt.Sprintf("mem: accounting broke: free=%d clean=%d dirty=%d wb=%d anon=%d kernel=%d zram=%d sum=%d total=%d",
			m.free, m.fileClean, m.fileDirty, m.writeback, m.anon, m.kernel, m.ZRAMPhysical(), sum, m.total))
	}
}

// Instrument registers the memory model's telemetry: the occupancy
// series the paper's SignalCapturer reads from /proc/meminfo (§3), the
// vmstat-style event counters its §5 Perfetto traces plot (pgscan,
// pgsteal, refaults, allocation stalls at the min watermark), and the
// derived pressure signals. The event counters stay nil — and free —
// until this is called.
func (m *Memory) Instrument(reg *telemetry.Registry) {
	m.tmPgscan = reg.Counter("mem.pgscan_pages")
	m.tmPgsteal = reg.Counter("mem.pgsteal_pages")
	m.tmRefaults = reg.Counter("mem.refault_pages")
	m.tmAllocStalls = reg.Counter("mem.alloc_stalls")
	reg.SampleFunc("mem.free_pages", func() float64 { return float64(m.free) })
	reg.SampleFunc("mem.available_pages", func() float64 { return float64(m.Available()) })
	reg.SampleFunc("mem.file_clean_pages", func() float64 { return float64(m.fileClean) })
	reg.SampleFunc("mem.file_dirty_pages", func() float64 { return float64(m.fileDirty) })
	reg.SampleFunc("mem.writeback_pages", func() float64 { return float64(m.writeback) })
	reg.SampleFunc("mem.anon_pages", func() float64 { return float64(m.anon) })
	reg.SampleFunc("mem.zram_stored_pages", func() float64 { return float64(m.zramStored) })
	reg.SampleFunc("mem.zram_phys_pages", func() float64 { return float64(m.ZRAMPhysical()) })
	reg.SampleFunc("mem.swapin_pages", func() float64 { return float64(m.swapIns) })
	reg.SampleFunc("mem.direct_reclaims", func() float64 { return float64(m.DirectReclaims) })
	reg.SampleFunc("mem.pressure", m.Pressure)
	reg.SampleFunc("mem.refault_deficit", m.RefaultDeficit)
	reg.SampleFunc("mem.below_low", func() float64 {
		if m.BelowLow() {
			return 1
		}
		return 0
	})
}

// SetWorkingSet registers (or updates) the named process's hot set.
func (m *Memory) SetWorkingSet(id string, ws WorkingSet) {
	old := m.workingSets[id]
	m.wsAnon += ws.Anon - old.Anon
	m.wsFile += ws.File - old.File
	m.workingSets[id] = ws
}

// RemoveWorkingSet drops the named process's hot set (process died).
func (m *Memory) RemoveWorkingSet(id string) {
	old, ok := m.workingSets[id]
	if !ok {
		return
	}
	m.wsAnon -= old.Anon
	m.wsFile -= old.File
	delete(m.workingSets, id)
}

func (m *Memory) totalWorkingSet() (anon, file units.Pages) {
	return m.wsAnon, m.wsFile
}

// AllocAnon attempts to allocate p anonymous pages. The fast path
// succeeds while free stays above the min watermark; otherwise the
// outcome reports how many pages the caller must direct-reclaim.
func (m *Memory) AllocAnon(p units.Pages) AllocOutcome {
	if p <= 0 {
		return AllocOutcome{}
	}
	if m.free-p >= m.wmMin {
		m.free -= p
		m.anon += p
		m.check()
		return AllocOutcome{Granted: p}
	}
	// Grant what keeps free at min; the rest needs direct reclaim.
	grant := m.free - m.wmMin
	if grant < 0 {
		grant = 0
	}
	m.free -= grant
	m.anon += grant
	m.DirectReclaims++
	m.tmAllocStalls.Inc()
	m.check()
	return AllocOutcome{Granted: grant, NeedDirectReclaim: p - grant}
}

// ForceAllocAnon allocates after a direct reclaim freed enough pages.
// It takes pages even if that dips below the min watermark (the kernel
// grants the blocked allocation as soon as pages appear).
func (m *Memory) ForceAllocAnon(p units.Pages) units.Pages {
	if p > m.free {
		p = m.free
	}
	m.free -= p
	m.anon += p
	m.check()
	return p
}

// FreeAnon releases p anonymous pages (process freed memory or died).
// If fewer than p anonymous pages exist, the remainder is taken out of
// zRAM (the process's pages had been compressed).
func (m *Memory) FreeAnon(p units.Pages) {
	if p <= 0 {
		return
	}
	fromAnon := p
	if fromAnon > m.anon {
		fromAnon = m.anon
	}
	before := m.ZRAMPhysical()
	m.anon -= fromAnon
	m.free += fromAnon
	rest := p - fromAnon
	if rest > 0 {
		if rest > m.zramStored {
			rest = m.zramStored
		}
		m.zramStored -= rest
		m.free += before - m.ZRAMPhysical()
	}
	m.check()
}

// FreeAnonProportional releases p logical anonymous pages split between
// resident anon and zRAM in proportion to the current compressed
// fraction. Use when a process dies: its heap is statistically as
// compressed as the system average.
func (m *Memory) FreeAnonProportional(p units.Pages) {
	if p <= 0 {
		return
	}
	f := m.AnonCompressedFraction()
	fromZram := units.Pages(float64(p) * f)
	fromAnon := p - fromZram
	if fromAnon > m.anon {
		fromAnon = m.anon
	}
	if fromZram > m.zramStored {
		fromZram = m.zramStored
	}
	before := m.ZRAMPhysical()
	m.anon -= fromAnon
	m.zramStored -= fromZram
	m.free += fromAnon + (before - m.ZRAMPhysical())
	m.check()
}

// FileRead fills p pages of page cache (a process read file data).
// Pages come from the free list; if free memory is insufficient the
// fill is truncated (the kernel would reclaim first — callers that care
// run reclaim and retry).
func (m *Memory) FileRead(p units.Pages) units.Pages {
	if p <= 0 {
		return 0
	}
	avail := m.free - m.wmMin
	if avail < 0 {
		avail = 0
	}
	if p > avail {
		p = avail
	}
	m.free -= p
	m.fileClean += p
	m.check()
	return p
}

// DropFileClean releases p clean cache pages (e.g. a file was deleted
// or a process exited and its cache is no longer wanted).
func (m *Memory) DropFileClean(p units.Pages) {
	if p > m.fileClean {
		p = m.fileClean
	}
	m.fileClean -= p
	m.free += p
	m.check()
}

// MarkDirty converts up to p clean cache pages to dirty (writes).
func (m *Memory) MarkDirty(p units.Pages) {
	if p > m.fileClean {
		p = m.fileClean
	}
	m.fileClean -= p
	m.fileDirty += p
	m.check()
}

// SwapInAnon brings p pages back from zRAM (a process touched
// compressed memory). It consumes free pages; the return value is the
// number actually swapped in (limited by zRAM content and free memory).
func (m *Memory) SwapInAnon(p units.Pages) units.Pages {
	if p > m.zramStored {
		p = m.zramStored
	}
	avail := m.free - m.wmMin
	if avail < 0 {
		avail = 0
	}
	if p > avail {
		p = avail
	}
	if p <= 0 {
		return 0
	}
	before := m.ZRAMPhysical()
	m.zramStored -= p
	freed := before - m.ZRAMPhysical() // physical pages vacated in zRAM
	m.free += freed
	m.free -= p
	m.anon += p
	m.swapIns += p
	m.check()
	return p
}

// zramRoom returns how many more logical pages zRAM can absorb.
func (m *Memory) zramRoom() units.Pages {
	room := units.Pages(float64(m.zramMax)*m.cfg.ZRAMRatio) - m.zramStored
	if room < 0 {
		room = 0
	}
	return room
}

// ScanBatch scans n pages of the LRU and reclaims what it can:
//
//   - cold clean file pages are dropped to the free list,
//   - cold dirty file pages move to the under-writeback pool (the
//     caller submits the disk I/O and calls CompleteWriteback),
//   - cold anonymous pages are compressed into zRAM while room remains,
//   - hot pages (covered by registered working sets) are mostly
//     skipped; a small fraction (HotReclaimProb) is reclaimed anyway,
//     which is the source of refaults.
//
// The scanned/reclaimed counts feed the pressure window.
func (m *Memory) ScanBatch(n units.Pages) ScanResult {
	var res ScanResult
	if n <= 0 {
		return res
	}
	// Without any swap device the kernel does not scan the anonymous
	// LRU at all — reclaim works the page cache only.
	scanAnonLRU := m.zramMax > 0
	scannable := m.fileClean + m.fileDirty
	if scanAnonLRU {
		scannable += m.anon
	}
	if scannable == 0 {
		// Nothing on the LRU at all: the scan spins without progress.
		res.Scanned = n
		m.noteScan(n, 0)
		return res
	}
	if n > scannable {
		n = scannable
	}
	res.Scanned = n

	wsAnon, wsFile := m.totalWorkingSet()
	file := m.fileClean + m.fileDirty
	hotFileFrac := frac(wsFile, file)
	// Registered anon working sets are logical (resident + compressed)
	// sizes; assume hot pages are uniformly mixed across resident anon
	// and zRAM, so the hot share of the *resident* pool equals the hot
	// share of the logical pool.
	hotAnonFrac := frac(wsAnon, m.anon+m.zramStored)

	// Draw scanned pages from the pools, with file pages weighted by
	// the swappiness-like bias.
	bias := m.cfg.FileScanBias
	anonPool := float64(0)
	if scanAnonLRU {
		anonPool = float64(m.anon)
	}
	weighted := bias*float64(m.fileClean+m.fileDirty) + anonPool
	scanClean := units.Pages(float64(n) * bias * float64(m.fileClean) / weighted)
	scanDirty := units.Pages(float64(n) * bias * float64(m.fileDirty) / weighted)
	if scanClean > m.fileClean {
		scanClean = m.fileClean
	}
	if scanDirty > m.fileDirty {
		scanDirty = m.fileDirty
	}
	scanAnon := n - scanClean - scanDirty
	if !scanAnonLRU {
		res.Scanned = scanClean + scanDirty
		scanAnon = 0
	}
	if scanAnon > m.anon {
		scanAnon = m.anon
	}

	reclaimFrac := func(hot, hotProb float64) float64 {
		// Cold pages always reclaim; hot pages with hotProb.
		return (1 - hot) + hot*hotProb
	}

	// Clean file: drop.
	recClean := units.Pages(float64(scanClean) * reclaimFrac(hotFileFrac, m.cfg.HotFileReclaimProb))
	if recClean > m.fileClean {
		recClean = m.fileClean
	}
	hotDropped := units.Pages(float64(recClean) * hotFileFrac)
	m.fileClean -= recClean
	m.free += recClean
	res.ReclaimedClean = recClean
	res.FreedNow += recClean

	// Dirty file: queue writeback.
	recDirty := units.Pages(float64(scanDirty) * reclaimFrac(hotFileFrac, m.cfg.HotFileReclaimProb))
	if recDirty > m.fileDirty {
		recDirty = m.fileDirty
	}
	m.fileDirty -= recDirty
	m.writeback += recDirty
	res.DirtyQueued = recDirty

	// Anon: compress into zRAM.
	recAnon := units.Pages(float64(scanAnon) * reclaimFrac(hotAnonFrac, m.cfg.HotAnonReclaimProb))
	if room := m.zramRoom(); recAnon > room {
		recAnon = room
	}
	if recAnon > m.anon {
		recAnon = m.anon
	}
	if recAnon > 0 {
		before := m.ZRAMPhysical()
		m.anon -= recAnon
		m.zramStored += recAnon
		gained := recAnon - (m.ZRAMPhysical() - before)
		if gained < 0 {
			gained = 0
		}
		m.free += gained
		res.AnonCompressed = recAnon
		res.FreedNow += gained
	}

	// Evicting hot file pages creates future refaults.
	m.TotalRefaults += hotDropped
	m.tmRefaults.Add(int64(hotDropped))

	// Pressure accounting: hot pages that the scan skipped count as
	// scanned-but-rotated (no reclaim credit); everything actually
	// taken off the LRU counts as reclaimed, matching pgscan/pgsteal.
	m.noteScan(res.Scanned, res.Reclaimed())
	m.check()
	return res
}

// CompleteWriteback moves p under-writeback pages to the free list
// (disk write finished, page was being reclaimed).
func (m *Memory) CompleteWriteback(p units.Pages) {
	if p > m.writeback {
		p = m.writeback
	}
	m.writeback -= p
	m.free += p
	m.check()
}

// BeginFlush moves up to p dirty pages into the under-writeback pool
// for a periodic (non-reclaim) flush and returns the count; pair with
// CompleteFlushClean when the disk write finishes.
func (m *Memory) BeginFlush(p units.Pages) units.Pages {
	if p > m.fileDirty {
		p = m.fileDirty
	}
	m.fileDirty -= p
	m.writeback += p
	m.check()
	return p
}

// CompleteFlushClean finishes a periodic flush: the pages stay in the
// cache, now clean.
func (m *Memory) CompleteFlushClean(p units.Pages) {
	if p > m.writeback {
		p = m.writeback
	}
	m.writeback -= p
	m.fileClean += p
	m.check()
}

func frac(a, b units.Pages) float64 {
	if b <= 0 {
		return 0
	}
	f := float64(a) / float64(b)
	if f > 1 {
		f = 1
	}
	return f
}

func (m *Memory) noteScan(scanned, reclaimed units.Pages) {
	m.TotalScanned += scanned
	m.TotalReclaimed += reclaimed
	m.tmPgscan.Add(int64(scanned))
	m.tmPgsteal.Add(int64(reclaimed))
	now := m.clock.Now()
	m.window = append(m.window, scanSample{at: now, scanned: scanned, reclaimed: reclaimed})
	m.winScanned += scanned
	m.winReclaimed += reclaimed
	m.trimWindow(now)
}

func (m *Memory) trimWindow(now time.Duration) {
	for m.winHead < len(m.window) && m.window[m.winHead].at < now-m.cfg.PressureWindow {
		m.winScanned -= m.window[m.winHead].scanned
		m.winReclaimed -= m.window[m.winHead].reclaimed
		m.winHead++
	}
	// Reclaim the dead prefix: reset when drained, compact when it
	// dominates the backing array so it cannot grow without bound.
	if m.winHead == len(m.window) {
		m.window = m.window[:0]
		m.winHead = 0
	} else if m.winHead > 64 && m.winHead > len(m.window)/2 {
		m.window = append(m.window[:0], m.window[m.winHead:]...)
		m.winHead = 0
	}
}

// Pressure returns the windowed memory-pressure estimate
// P = (1 − R/S) · 100 from §2. It is 0 when no scanning happened in the
// window (an idle reclaim path means no pressure).
func (m *Memory) Pressure() float64 {
	m.trimWindow(m.clock.Now())
	s, r := m.winScanned, m.winReclaimed
	if s == 0 {
		return 0
	}
	p := (1 - float64(r)/float64(s)) * 100
	if p < 0 {
		p = 0
	}
	return p
}

// RefaultDeficit returns the fraction of the registered file working
// sets that is not resident in the page cache — the thrashing signal.
// 0 means all hot file pages are cached; 1 means none are.
func (m *Memory) RefaultDeficit() float64 {
	_, wsFile := m.totalWorkingSet()
	if wsFile == 0 {
		return 0
	}
	resident := m.fileClean + m.fileDirty
	if resident >= wsFile {
		return 0
	}
	return 1 - float64(resident)/float64(wsFile)
}

// AnonCompressedFraction returns the share of anonymous memory that
// currently lives compressed in zRAM; processes touching it swap in.
func (m *Memory) AnonCompressedFraction() float64 {
	tot := m.anon + m.zramStored
	if tot == 0 {
		return 0
	}
	return float64(m.zramStored) / float64(tot)
}

// String summarizes occupancy for diagnostics.
func (m *Memory) String() string {
	return fmt.Sprintf("mem{free=%s clean=%s dirty=%s wb=%s anon=%s zram=%s/%s avail=%s P=%.0f}",
		m.free.Bytes(), m.fileClean.Bytes(), m.fileDirty.Bytes(), m.writeback.Bytes(),
		m.anon.Bytes(), m.ZRAMPhysical().Bytes(), m.zramStored.Bytes(), m.Available().Bytes(), m.Pressure())
}
