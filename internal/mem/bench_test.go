package mem_test

import (
	"testing"

	"coalqoe/internal/kernbench"
)

// Wrapper over the shared suite body (internal/kernbench), so
// `go test -bench . ./internal/mem` measures exactly what
// cmd/coalbench records in BENCH_5.json.

func BenchmarkScan(b *testing.B) { kernbench.MemScan(b) }
