package cdn

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// body builds a distinguishable body of n bytes.
func body(tag byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = tag
	}
	return b
}

// get is the serial driver: every test Get in single-threaded mode.
func get(t *testing.T, c *Cache, key string, b []byte) (hit bool) {
	t.Helper()
	got, hit, err := c.Get(key, func() ([]byte, error) { return b, nil })
	if err != nil {
		t.Fatalf("Get(%q): %v", key, err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Fatalf("Get(%q) returned wrong body: %d bytes, want %d", key, len(got), len(b))
	}
	return hit
}

func TestAdmissionDoorkeeper(t *testing.T) {
	c := New(Config{Capacity: 1 << 20})
	// Default AdmitAfter 2: the first fill is a one-hit wonder, not
	// cached; the second proves the key and admits; the third hits.
	if get(t, c, "a", body('a', 100)) {
		t.Error("first request hit")
	}
	if s := c.Stats(); s.Misses != 1 || s.Rejected != 1 || s.Entries != 0 {
		t.Errorf("after 1st miss: %+v", s)
	}
	if get(t, c, "a", body('a', 100)) {
		t.Error("second request hit (should be the admitting miss)")
	}
	if s := c.Stats(); s.Misses != 2 || s.Admitted != 1 || s.Entries != 1 || s.Bytes != 100 {
		t.Errorf("after admitting miss: %+v", s)
	}
	if !get(t, c, "a", body('a', 100)) {
		t.Error("third request missed")
	}
	if s := c.Stats(); s.Hits != 1 || s.Fills != 2 {
		t.Errorf("after hit: %+v", s)
	}
}

func TestAdmitAfterOne(t *testing.T) {
	c := New(Config{Capacity: 1 << 20, AdmitAfter: 1})
	get(t, c, "a", body('a', 10))
	if !get(t, c, "a", body('a', 10)) {
		t.Error("AdmitAfter=1 should admit on first miss")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(Config{Capacity: 250, AdmitAfter: 1})
	get(t, c, "a", body('a', 100))
	get(t, c, "b", body('b', 100))
	if !get(t, c, "a", body('a', 100)) { // touch a: LRU order is now a, b
		t.Fatal("a should be resident")
	}
	get(t, c, "c", body('c', 100)) // 300 > 250: evicts b, the LRU tail
	if want := []string{"c", "a"}; !reflect.DeepEqual(c.Keys(), want) {
		t.Errorf("Keys() = %v, want %v", c.Keys(), want)
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 2 || s.Bytes != 200 {
		t.Errorf("after eviction: %+v", s)
	}
	// b was evicted; its doorkeeper record restarted, so one request
	// is a rejected re-fill, the second re-admits.
	if get(t, c, "b", body('b', 100)) {
		t.Error("evicted key hit")
	}
	get(t, c, "b", body('b', 100))
	if !get(t, c, "b", body('b', 100)) {
		t.Error("b should be re-admitted after proving itself again")
	}
}

func TestOversizeBodyRejected(t *testing.T) {
	c := New(Config{Capacity: 50, AdmitAfter: 1})
	get(t, c, "big", body('x', 100))
	if s := c.Stats(); s.Rejected != 1 || s.Entries != 0 {
		t.Errorf("oversize body should be rejected: %+v", s)
	}
}

func TestZeroCapacityNeverStores(t *testing.T) {
	c := New(Config{AdmitAfter: 1})
	for i := 0; i < 3; i++ {
		if get(t, c, "a", body('a', 10)) {
			t.Fatal("zero-capacity cache produced a hit")
		}
	}
	if s := c.Stats(); s.Misses != 3 || s.Rejected != 3 || s.Entries != 0 {
		t.Errorf("zero-capacity stats: %+v", s)
	}
}

func TestGhostBound(t *testing.T) {
	c := New(Config{Capacity: 1 << 20, GhostSize: 2})
	get(t, c, "a", body('a', 10)) // ghosts: a
	get(t, c, "b", body('b', 10)) // ghosts: b a
	get(t, c, "c", body('c', 10)) // ghosts: c b — a forgotten
	// a's count restarted: this request counts as its first again.
	get(t, c, "a", body('a', 10))
	if s := c.Stats(); s.Admitted != 0 {
		t.Errorf("forgotten ghost should not admit: %+v", s)
	}
	// But b survived in the doorkeeper... no: pushing a back evicted b.
	// c is still tracked; its second request admits.
	get(t, c, "c", body('c', 10))
	if s := c.Stats(); s.Admitted != 1 || s.Entries != 1 {
		t.Errorf("tracked ghost should admit on 2nd request: %+v", s)
	}
}

func TestFillErrorNotCachedAndRetriable(t *testing.T) {
	c := New(Config{Capacity: 1 << 20, AdmitAfter: 1, Coalesce: true})
	boom := errors.New("origin down")
	_, _, err := c.Get("k", func() ([]byte, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if s := c.Stats(); s.Entries != 0 || s.Fills != 1 {
		t.Errorf("error fill must not cache: %+v", s)
	}
	// The flight is cleared: the next Get runs a fresh fill and succeeds.
	if hit := get(t, c, "k", body('k', 10)); hit {
		t.Error("hit after failed fill")
	}
	if s := c.Stats(); s.Fills != 2 || s.Entries != 1 {
		t.Errorf("recovery fill: %+v", s)
	}
}

// TestCoalesceSingleGeneration is the acceptance-pinned property:
// N concurrent fetches of one segment generate it exactly once. It is
// deterministic — the leader's fill blocks until the cache reports
// all N-1 followers parked on the flight, so the interleaving under
// test is forced, not raced.
func TestCoalesceSingleGeneration(t *testing.T) {
	const followers = 7
	c := New(Config{Capacity: 1 << 20, AdmitAfter: 1, Coalesce: true})
	var fills atomic.Int64
	release := make(chan struct{})
	leaderIn := make(chan struct{})
	want := body('k', 64)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		got, hit, err := c.Get("seg", func() ([]byte, error) {
			fills.Add(1)
			close(leaderIn) // fill is running: followers issued now must coalesce
			<-release
			return want, nil
		})
		if err != nil || hit || !reflect.DeepEqual(got, want) {
			t.Errorf("leader: hit=%v err=%v", hit, err)
		}
	}()
	<-leaderIn
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, hit, err := c.Get("seg", func() ([]byte, error) {
				fills.Add(1)
				return body('X', 1), nil
			})
			if err != nil || hit || !reflect.DeepEqual(got, want) {
				t.Errorf("follower: hit=%v err=%v", hit, err)
			}
		}()
	}
	// Deterministic release: only unblock the fill once every follower
	// is provably waiting on it.
	for c.Waiters("seg") != followers {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if n := fills.Load(); n != 1 {
		t.Fatalf("origin generations = %d, want exactly 1", n)
	}
	s := c.Stats()
	if s.Fills != 1 || s.Misses != 1 || s.Coalesced != followers {
		t.Errorf("stats = %+v, want fills=1 misses=1 coalesced=%d", s, followers)
	}
	// The collapsed demand (1 leader + 7 waiters) cleared AdmitAfter:
	// the next fetch is a hit.
	if !get(t, c, "seg", want) {
		t.Error("post-coalesce fetch missed")
	}
}

// TestCoalescedDemandCountsForAdmission: with the default AdmitAfter 2
// a single coalesced burst carries enough demand to admit.
func TestCoalescedDemandCountsForAdmission(t *testing.T) {
	c := New(Config{Capacity: 1 << 20, Coalesce: true}) // AdmitAfter 2
	release := make(chan struct{})
	leaderIn := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Get("seg", func() ([]byte, error) {
			close(leaderIn)
			<-release
			return body('k', 8), nil
		})
	}()
	<-leaderIn
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Get("seg", func() ([]byte, error) { return body('k', 8), nil })
	}()
	for c.Waiters("seg") != 1 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if s := c.Stats(); s.Admitted != 1 {
		t.Errorf("burst of 2 should clear AdmitAfter=2: %+v", s)
	}
}

// TestConcurrentInvariants hammers the cache from many goroutines and
// checks the counter algebra afterwards (run with -race).
func TestConcurrentInvariants(t *testing.T) {
	const (
		workers = 16
		perW    = 200
		keys    = 12
	)
	c := New(Config{Capacity: 600, AdmitAfter: 2, Coalesce: true})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				k := fmt.Sprintf("k%d", (w+i)%keys)
				got, _, err := c.Get(k, func() ([]byte, error) { return body(k[1], 100), nil })
				if err != nil || len(got) != 100 {
					t.Errorf("Get(%q): len=%d err=%v", k, len(got), err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s := c.Stats()
	if total := s.Hits + s.Misses + s.Coalesced; total != workers*perW {
		t.Errorf("hits+misses+coalesced = %d, want %d (%+v)", total, workers*perW, s)
	}
	if s.Fills != s.Misses {
		t.Errorf("fills = %d, misses = %d", s.Fills, s.Misses)
	}
	if s.Bytes > 600 {
		t.Errorf("resident bytes %d exceed capacity", s.Bytes)
	}
	if s.Entries != int64(len(c.Keys())) {
		t.Errorf("entries %d != len(keys) %d", s.Entries, len(c.Keys()))
	}
}

// TestCoalescedFillSurvivesRejectedAdmission: waiters on a singleflight
// fill read the flight's captured body, not the cache map — so a fill
// whose entry never makes it into the cache (oversize rejection is the
// deterministic way to force that) must still deliver the bytes to
// every waiter, with exactly one origin generation.
func TestCoalescedFillSurvivesRejectedAdmission(t *testing.T) {
	c := New(Config{Capacity: 100, AdmitAfter: 1, Coalesce: true})
	want := body('Z', 150) // bigger than capacity: admission must reject
	release := make(chan struct{})
	leaderIn := make(chan struct{})
	var fills atomic.Int64
	var wg sync.WaitGroup

	const followers = 4
	wg.Add(1)
	go func() {
		defer wg.Done()
		got, hit, err := c.Get("big", func() ([]byte, error) {
			fills.Add(1)
			close(leaderIn)
			<-release
			return want, nil
		})
		if err != nil || hit || !reflect.DeepEqual(got, want) {
			t.Errorf("leader: hit=%v err=%v len=%d", hit, err, len(got))
		}
	}()
	<-leaderIn
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, hit, err := c.Get("big", func() ([]byte, error) {
				fills.Add(1)
				return body('X', 1), nil
			})
			if err != nil || hit || !reflect.DeepEqual(got, want) {
				t.Errorf("waiter: hit=%v err=%v len=%d", hit, err, len(got))
			}
		}()
	}
	for c.Waiters("big") != followers {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if n := fills.Load(); n != 1 {
		t.Fatalf("origin generations = %d, want exactly 1", n)
	}
	s := c.Stats()
	if s.Fills != 1 || s.Coalesced != followers {
		t.Errorf("stats = %+v, want fills=1 coalesced=%d", s, followers)
	}
	if s.Rejected == 0 || s.Entries != 0 {
		t.Errorf("oversize entry should have been rejected, not cached: %+v", s)
	}
}

// TestCoalescedFillSurvivesConcurrentEviction: while a coalesced fill
// is blocked, competing traffic churns the LRU so the cache state the
// flight started from is long gone by the time it completes. The
// waiters still get the flight's bytes and the counter algebra holds.
func TestCoalescedFillSurvivesConcurrentEviction(t *testing.T) {
	c := New(Config{Capacity: 200, AdmitAfter: 1, Coalesce: true})
	want := body('s', 120)
	release := make(chan struct{})
	leaderIn := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		got, _, err := c.Get("seg", func() ([]byte, error) {
			close(leaderIn)
			<-release
			return want, nil
		})
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Errorf("leader: err=%v len=%d", err, len(got))
		}
	}()
	<-leaderIn
	wg.Add(1)
	go func() {
		defer wg.Done()
		got, _, err := c.Get("seg", func() ([]byte, error) { return body('X', 1), nil })
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Errorf("waiter: err=%v len=%d", err, len(got))
		}
	}()
	for c.Waiters("seg") != 1 {
		runtime.Gosched()
	}
	// Churn: admit competing entries that consume the capacity the
	// blocked flight will want, forcing evictions when it lands.
	for i := 0; i < 6; i++ {
		k := fmt.Sprintf("churn%d", i)
		if _, _, err := c.Get(k, func() ([]byte, error) { return body('c', 60), nil }); err != nil {
			t.Fatalf("churn fill: %v", err)
		}
	}
	close(release)
	wg.Wait()

	s := c.Stats()
	if s.Bytes > 200 {
		t.Errorf("resident bytes %d exceed capacity after eviction race", s.Bytes)
	}
	if s.Entries != int64(len(c.Keys())) {
		t.Errorf("entries counter %d disagrees with key count %d", s.Entries, len(c.Keys()))
	}
	// One generation for seg, one per churn key.
	if s.Fills != 7 {
		t.Errorf("fills = %d, want 7", s.Fills)
	}
}
