// Server-side chaos: the deterministic fault plans of internal/faults
// replayed on a real HTTP serving path. The simulator's Injector maps
// a plan's windows onto the virtual device (link outages, disk stalls,
// memory spikes); Chaos maps the same windows onto the server the
// load generator hammers, so the crash-recovery client machinery
// (dash.Client retries, player RecoveryPolicy) is exercised against
// genuine 5xx bursts and latency storms instead of simulated ones.
//
// Kind mapping (documented per window kind, severities reused as-is):
//
//	NetOutage            -> 503 Service Unavailable for the window (a 5xx burst)
//	NetLoss(rate)        -> each request fails with probability rate as 502
//	IOStall(factor)      -> origin slowdown: misses pay (factor-1) x the
//	                        nominal origin service time extra (hits are unaffected,
//	                        exactly like a CDN in front of a sick origin)
//	MemSpike(bytes)      -> injected response latency: every request in the
//	                        window waits ~1ms per 32 MiB of spike, modeling
//	                        allocator stalls and reclaim on the serving host
//
// Determinism: the window schedule is faults.Spec.Windows — a pure
// function of (plan, seed, horizon) — and repeats every horizon, so a
// long-running server cycles the same storm script. Per-request loss
// decisions hash a request ordinal instead of drawing from a shared
// RNG: given the same arrival order, the same requests are dropped.
// Only the clock is real, and it is injected (wall-clock wiring lives
// in cmd/, per LINTING.md).
package cdn

import (
	"sort"
	"sync/atomic"
	"time"

	"coalqoe/internal/faults"
)

// nominalOriginDelay is the modeled healthy origin service time that
// IOStall severities multiply.
const nominalOriginDelay = 2 * time.Millisecond

// spikeDelayUnit is the spike size that buys one millisecond of
// injected response latency during a MemSpike window.
const spikeDelayUnit = 32 << 20 // bytes per ms

// Effect is the chaos verdict for one request.
type Effect struct {
	// Status is nonzero when the request must be rejected with this
	// 5xx code before any serving work happens.
	Status int
	// OriginDelay is extra latency the origin (miss) path must pay;
	// cache hits skip it.
	OriginDelay time.Duration
}

// ChaosStats snapshots the gate's counters.
type ChaosStats struct {
	Rejected int64 // requests failed with an injected 5xx
	Delayed  int64 // requests that paid injected response latency
	Stalled  int64 // requests tagged with origin slowdown
}

// Chaos evaluates fault windows against the wall clock for a live
// HTTP server. Safe for concurrent use: the schedule is immutable
// after construction and the mutable state is atomic.
type Chaos struct {
	horizon time.Duration
	start   time.Time
	now     func() time.Time
	sleep   func(time.Duration)
	seed    int64

	// Per-kind schedules, sorted by start. Windows of one kind never
	// overlap (faults.Spec.Windows generates them sequentially), so a
	// binary search fully resolves "active now".
	outages []faults.Window
	losses  []faults.Window
	stalls  []faults.Window
	spikes  []faults.Window

	reqs     atomic.Int64
	rejected atomic.Int64
	delayed  atomic.Int64
	stalled  atomic.Int64
}

// NewChaos materializes spec over one horizon and arms the gate. The
// now func anchors window positions to real time (the schedule starts
// at the first call's instant and repeats every horizon); sleep
// applies injected latency. Both are injected from the binary's main
// package (typically time.Now and time.Sleep).
func NewChaos(spec faults.Spec, seed int64, horizon time.Duration, now func() time.Time, sleep func(time.Duration)) *Chaos {
	if now == nil || sleep == nil {
		panic("cdn: NewChaos needs now and sleep funcs; pass time.Now/time.Sleep from the binary's main package")
	}
	if horizon <= 0 {
		horizon = 10 * time.Minute
	}
	return NewChaosFromWindows(spec.Windows(seed, horizon), seed, horizon, now, sleep)
}

// NewChaosFromWindows arms the gate with an explicit window schedule —
// the constructor tests use to pin exact storm positions. Windows of
// one kind must not overlap (faults.Spec.Windows never produces
// overlaps; hand-built schedules must honor the same invariant).
//
// The schedule repeats every horizon, so a window straddling the
// boundary is split into its tail ([Start, horizon)) and the wrapped
// head ([0, End-horizon)): Gate evaluates `elapsed % horizon`, and
// without the split the head portion would fire on the first pass but
// silently vanish on every subsequent wrap — the schedule would not
// replay identically.
func NewChaosFromWindows(windows []faults.Window, seed int64, horizon time.Duration, now func() time.Time, sleep func(time.Duration)) *Chaos {
	c := &Chaos{horizon: horizon, start: now(), now: now, sleep: sleep, seed: seed}
	add := func(w faults.Window) {
		switch w.Kind {
		case faults.NetOutage:
			c.outages = append(c.outages, w)
		case faults.NetLoss:
			c.losses = append(c.losses, w)
		case faults.IOStall:
			c.stalls = append(c.stalls, w)
		case faults.MemSpike:
			c.spikes = append(c.spikes, w)
		}
	}
	for _, w := range windows {
		if w.Duration <= 0 {
			continue
		}
		if w.Start >= horizon {
			// Entirely past the boundary: place it where the repeating
			// schedule will actually observe it.
			w.Start %= horizon
		}
		if over := w.End() - horizon; over > 0 {
			tail := w
			tail.Duration = horizon - tail.Start
			add(tail)
			head := w
			head.Start = 0
			// A window longer than the horizon covers it completely;
			// cap the head at the tail's start so the pieces never
			// overlap themselves.
			if head.Duration = over; head.Duration > w.Start {
				head.Duration = w.Start
			}
			add(head)
			continue
		}
		add(w)
	}
	// activeSeverity binary-searches by start; the head pieces above
	// (and hand-built schedules) may arrive out of order.
	for _, ws := range [][]faults.Window{c.outages, c.losses, c.stalls, c.spikes} {
		sort.Slice(ws, func(i, j int) bool { return ws[i].Start < ws[j].Start })
	}
	return c
}

// activeSeverity returns the severity of the window covering elapsed,
// if any. The windows are sorted by start and non-overlapping.
func activeSeverity(ws []faults.Window, elapsed time.Duration) (float64, bool) {
	lo, hi := 0, len(ws)
	for lo < hi {
		mid := (lo + hi) / 2
		if ws[mid].Start <= elapsed {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// ws[lo-1] is the last window starting at or before elapsed.
	if lo > 0 && ws[lo-1].End() > elapsed {
		return ws[lo-1].Severity, true
	}
	return 0, false
}

// hashUnit maps (seed, n) to a uniform value in [0,1) — the RNG-free
// per-request loss decision (deterministic in arrival order).
func hashUnit(seed, n int64) float64 {
	h := uint64(seed)*0x9e3779b97f4a7c15 + uint64(n)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return float64(h%100000) / 100000
}

// Gate evaluates the chaos schedule for one request: it sleeps any
// injected response latency, then returns either a rejection status
// or the origin delay the miss path must pay. Callers apply Effect
// before doing any serving work.
func (c *Chaos) Gate() Effect {
	elapsed := c.now().Sub(c.start) % c.horizon
	if sev, ok := activeSeverity(c.spikes, elapsed); ok {
		d := time.Duration(sev / spikeDelayUnit * float64(time.Millisecond))
		if d > 0 {
			c.delayed.Add(1)
			c.sleep(d)
		}
	}
	if _, ok := activeSeverity(c.outages, elapsed); ok {
		c.rejected.Add(1)
		return Effect{Status: 503}
	}
	if rate, ok := activeSeverity(c.losses, elapsed); ok {
		if hashUnit(c.seed, c.reqs.Add(1)) < rate {
			c.rejected.Add(1)
			return Effect{Status: 502}
		}
	}
	if factor, ok := activeSeverity(c.stalls, elapsed); ok && factor > 1 {
		c.stalled.Add(1)
		return Effect{OriginDelay: time.Duration((factor - 1) * float64(nominalOriginDelay))}
	}
	return Effect{}
}

// Delay applies an origin delay through the injected sleep — the miss
// path calls this inside its fill so coalesced waiters share one
// stall, like they share one generation.
func (c *Chaos) Delay(d time.Duration) {
	if d > 0 {
		c.sleep(d)
	}
}

// Stats snapshots the chaos counters.
func (c *Chaos) Stats() ChaosStats {
	return ChaosStats{
		Rejected: c.rejected.Load(),
		Delayed:  c.delayed.Load(),
		Stalled:  c.stalled.Load(),
	}
}
