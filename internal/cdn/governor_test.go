package cdn

import (
	"reflect"
	"testing"
	"time"
)

// govClock is a hand-advanced clock for governor tests.
type govClock struct{ t time.Time }

func newGovClock() *govClock                { return &govClock{t: time.Unix(1700000000, 0)} }
func (c *govClock) now() time.Time          { return c.t }
func (c *govClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestGovernorAdmitQueueShed(t *testing.T) {
	clk := newGovClock()
	g := NewGovernor(GovernorConfig{MaxInflight: 2, MaxQueue: 2, RetryAfter: 5 * time.Second}, clk.now)

	for i := 0; i < 2; i++ {
		if d := g.Admit("a"); d.Kind != Admitted {
			t.Fatalf("admit %d: kind = %v, want Admitted", i, d.Kind)
		}
	}
	var tickets []*Ticket
	for i := 0; i < 2; i++ {
		d := g.Admit("a")
		if d.Kind != Queued || d.Ticket == nil {
			t.Fatalf("overflow %d: kind = %v, want Queued with ticket", i, d.Kind)
		}
		tickets = append(tickets, d.Ticket)
	}
	d := g.Admit("a")
	if d.Kind != Shed || d.Status != 503 || d.RetryAfter != 5*time.Second {
		t.Fatalf("full queue: decision = %+v, want Shed 503 Retry-After 5s", d)
	}

	// Release hands the freed slot to the oldest queued ticket, both by
	// return value and on the ticket's channel.
	got := g.Release()
	if got != tickets[0] {
		t.Fatal("release granted out of FIFO order within a tenant")
	}
	select {
	case <-got.C:
	default:
		t.Fatal("grant not delivered on the ticket channel")
	}

	s := g.Stats()
	if s.Admitted != 2 || s.Queued != 2 || s.Shed != 1 || s.Granted != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.Inflight != 2 || s.QueueDepth != 1 {
		t.Errorf("inflight=%d queue=%d, want 2/1", s.Inflight, s.QueueDepth)
	}
}

func TestGovernorUnlimitedWhenUnconfigured(t *testing.T) {
	g := NewGovernor(GovernorConfig{}, newGovClock().now)
	for i := 0; i < 100; i++ {
		if d := g.Admit("x"); d.Kind != Admitted {
			t.Fatalf("unconfigured governor must admit everything, got %v", d.Kind)
		}
	}
	if g.Release() != nil {
		t.Error("release with empty queue must return nil")
	}
}

func TestGovernorDRRFairness(t *testing.T) {
	clk := newGovClock()
	g := NewGovernor(GovernorConfig{MaxInflight: 1, MaxQueue: 8}, clk.now)
	if d := g.Admit("hot"); d.Kind != Admitted {
		t.Fatal("first request should be admitted")
	}
	// Hot tenant floods the queue first; cold tenant arrives later with
	// fewer requests. DRR must interleave grants, not drain hot first.
	for i := 0; i < 4; i++ {
		if d := g.Admit("hot"); d.Kind != Queued {
			t.Fatalf("hot %d not queued: %v", i, d.Kind)
		}
	}
	for i := 0; i < 2; i++ {
		if d := g.Admit("cold"); d.Kind != Queued {
			t.Fatalf("cold %d not queued: %v", i, d.Kind)
		}
	}
	var order []string
	for i := 0; i < 6; i++ {
		tk := g.Release()
		if tk == nil {
			t.Fatalf("release %d returned nil with %d queued", i, 6-i)
		}
		<-tk.C
		order = append(order, tk.tenant)
	}
	want := []string{"hot", "cold", "hot", "cold", "hot", "hot"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", order, want)
		}
	}
}

func TestGovernorQuotaThrottle(t *testing.T) {
	clk := newGovClock()
	g := NewGovernor(GovernorConfig{
		Quotas: []TenantQuota{{Name: "metered", Rate: 1, Burst: 2}},
	}, clk.now)

	// Full burst is available up front.
	for i := 0; i < 2; i++ {
		if d := g.Admit("metered"); d.Kind != Admitted {
			t.Fatalf("burst admit %d: %v", i, d.Kind)
		}
	}
	d := g.Admit("metered")
	if d.Kind != Shed || d.Status != 429 {
		t.Fatalf("over-quota: decision = %+v, want Shed 429", d)
	}
	if d.RetryAfter < time.Second {
		t.Errorf("Retry-After hint = %v, want >= 1s (bucket refill time)", d.RetryAfter)
	}
	// The bucket refills on the injected clock.
	clk.advance(1500 * time.Millisecond)
	if d := g.Admit("metered"); d.Kind != Admitted {
		t.Fatalf("post-refill: %v, want Admitted", d.Kind)
	}
	// Unlisted tenants are never throttled.
	for i := 0; i < 50; i++ {
		if d := g.Admit("unmetered"); d.Kind != Admitted {
			t.Fatal("unlisted tenant throttled")
		}
	}
	s := g.Stats()
	if tc := s.PerTenant["metered"]; tc.Granted != 3 || tc.Throttled != 1 {
		t.Errorf("metered counters = %+v, want granted=3 throttled=1", tc)
	}
	if tc := s.PerTenant["unmetered"]; tc.Granted != 50 || tc.Throttled != 0 {
		t.Errorf("unmetered counters = %+v, want granted=50 throttled=0", tc)
	}
}

func TestGovernorBrownoutHysteresis(t *testing.T) {
	clk := newGovClock()
	g := NewGovernor(GovernorConfig{
		MaxInflight: 1, MaxQueue: 4,
		BrownoutEnter: 0.2, // exit defaults to 0.05, demote to 2
	}, clk.now)

	if d := g.Admit("a"); d.Kind != Admitted || d.Demote != 0 {
		t.Fatalf("healthy admit: %+v, want Admitted undemoted", d)
	}
	// Saturate: fill the queue, then shed until the pressure signal
	// trips (queue congestion or shed EWMA, whichever first).
	for i := 0; i < 4; i++ {
		g.Admit("a")
	}
	for i := 0; i < 20; i++ {
		if d := g.Admit("a"); d.Kind != Shed {
			t.Fatalf("shed %d: %v", i, d.Kind)
		}
	}
	if s := g.Stats(); !s.BrownoutActive || s.BrownoutEntered != 1 {
		t.Fatalf("brownout not engaged after sustained shedding: %+v", s)
	}
	// Queued requests granted during brownout carry the demotion hint.
	tk := g.Release()
	if grant := <-tk.C; grant.Demote != 2 {
		t.Fatalf("brownout grant demote = %d, want 2", grant.Demote)
	}
	for g.Release() != nil {
	}

	// Recovery: a long run of clean admissions decays the EWMA below
	// the exit threshold — brownout disengages exactly once (hysteresis,
	// no oscillation) and demotion hints stop.
	for i := 0; i < 400; i++ {
		d := g.Admit("a")
		if d.Kind != Admitted {
			t.Fatalf("recovery admit %d: %v", i, d.Kind)
		}
		g.Release()
	}
	s := g.Stats()
	if s.BrownoutActive {
		t.Fatalf("brownout still active after recovery: ewma=%v", s.ShedEWMA)
	}
	if s.BrownoutEntered != 1 || s.BrownoutExited != 1 {
		t.Errorf("brownout oscillated: entered=%d exited=%d, want 1/1", s.BrownoutEntered, s.BrownoutExited)
	}
	if d := g.Admit("a"); d.Demote != 0 {
		t.Errorf("post-recovery admit still demoted: %d", d.Demote)
	}
}

func TestGovernorCancel(t *testing.T) {
	clk := newGovClock()
	g := NewGovernor(GovernorConfig{MaxInflight: 1, MaxQueue: 4}, clk.now)
	g.Admit("a")
	d1 := g.Admit("a")
	d2 := g.Admit("b")
	if d1.Kind != Queued || d2.Kind != Queued {
		t.Fatal("setup: both should queue")
	}
	if !g.Cancel(d1.Ticket) {
		t.Fatal("cancel of a queued ticket must succeed")
	}
	if g.Cancel(d1.Ticket) {
		t.Fatal("double cancel must report false")
	}
	// The canceled ticket is skipped: the next release grants b.
	tk := g.Release()
	if tk != d2.Ticket {
		t.Fatal("release granted a canceled ticket")
	}
	// Cancel racing a delivered grant reports false; the caller then
	// owns the slot and must consume + release.
	if g.Cancel(d2.Ticket) {
		t.Fatal("cancel after grant must report false")
	}
	<-tk.C
	if s := g.Stats(); s.Canceled != 1 || s.QueueDepth != 0 {
		t.Errorf("stats = %+v, want canceled=1 depth=0", s)
	}
}

func TestGovernorDeterministicReplay(t *testing.T) {
	// The same call sequence at the same injected instants produces
	// identical decisions and stats — the property the virtual-time
	// simulator and the A/B acceptance test stand on.
	run := func() ([]AdmitKind, GovernorStats) {
		clk := newGovClock()
		g := NewGovernor(GovernorConfig{
			MaxInflight: 2, MaxQueue: 3, BrownoutEnter: 0.3,
			Quotas: []TenantQuota{{Name: "t1", Rate: 5, Burst: 5}},
		}, clk.now)
		var kinds []AdmitKind
		tenants := []string{"t1", "t2", "t1", "t3", "t2", "t1"}
		for step := 0; step < 120; step++ {
			d := g.Admit(tenants[step%len(tenants)])
			kinds = append(kinds, d.Kind)
			if d.Kind == Queued && step%3 == 0 {
				g.Cancel(d.Ticket)
			}
			if step%2 == 1 {
				if tk := g.Release(); tk != nil {
					<-tk.C
				}
			}
			clk.advance(50 * time.Millisecond)
		}
		return kinds, g.Stats()
	}
	k1, s1 := run()
	k2, s2 := run()
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("decision %d differs: %v vs %v", i, k1[i], k2[i])
		}
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("stats differ:\n%+v\n%+v", s1, s2)
	}
}

func TestGovernorMetricsExtras(t *testing.T) {
	clk := newGovClock()
	g := NewGovernor(GovernorConfig{
		MaxInflight: 1, MaxQueue: 1,
		Quotas: []TenantQuota{{Name: "acme", Rate: 100}},
	}, clk.now)
	g.Admit("acme")
	g.Admit("acme") // queued
	g.Admit("acme") // shed
	m := g.MetricsExtras()
	for _, key := range []string{
		"dash.admit.admitted", "dash.admit.queued", "dash.admit.shed",
		"dash.admit.inflight", "dash.admit.queue_depth",
		"dash.brownout.active", "dash.brownout.demoted",
		"dash.quota.granted.acme", "dash.quota.throttled.acme",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics extras missing %q", key)
		}
	}
	if m["dash.admit.admitted"] != 1 || m["dash.admit.shed"] != 1 {
		t.Errorf("extras = %v", m)
	}
}
