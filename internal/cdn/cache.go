// Package cdn is the serving-side delivery model: a segment cache with
// size-aware LRU eviction, frequency-based admission control and
// singleflight request coalescing, plus an HTTP chaos gate that maps
// the deterministic fault plans of internal/faults onto a real
// net/http serving path. Together they turn internal/dash's one-client
// test server into the CDN-shaped backend the paper's findings imply
// at scale: millions of devices do not hit one Apache box, they hit a
// cache hierarchy whose hit rate, admission policy and request
// collapsing decide what the origin actually sees (§4.1's testbed is
// the degenerate single-client case).
//
// Concurrency and determinism: every state transition of the Cache
// happens under one mutex, and nothing inside the package consults a
// clock or an RNG — LRU order is access order, admission is a pure
// request-count threshold, and coalescing keys off in-flight fills.
// Called from a single goroutine the cache is therefore a
// deterministic state machine over the request sequence (the
// "single-threaded mode" the unit tests drive: same Gets in, same
// hits/misses/evictions out, byte for byte). Under concurrency the
// mutex serializes transitions, so the same invariants hold per
// interleaving; only fills run outside the lock.
package cdn

import (
	"container/list"
	"sync"
)

// Config shapes a Cache. The zero value is a pass-through: no
// capacity (nothing is admitted), no coalescing.
type Config struct {
	// Capacity bounds the total cached body bytes. Zero or negative
	// means nothing is ever stored — useful for a coalesce-only cache.
	Capacity int64
	// AdmitAfter is the number of requests (including the admitting
	// one) a key must accumulate before its body is cached: 1 admits on
	// first miss, the default 2 keeps one-hit wonders out (a key must
	// prove itself twice before it may displace a proven resident).
	AdmitAfter int
	// GhostSize bounds the doorkeeper table that tracks request counts
	// of not-yet-admitted keys (default 4096 keys). When it overflows,
	// the least-recently-requested ghost is forgotten and that key
	// starts counting from zero again.
	GhostSize int
	// Coalesce collapses concurrent fills of the same key into one
	// origin generation; late arrivals wait for the leader's result.
	Coalesce bool
}

const (
	defaultAdmitAfter = 2
	defaultGhostSize  = 4096
)

// Stats is a snapshot of the cache counters. Hits+Misses+Coalesced
// equals the total Get calls; Fills counts origin generations (the
// number acceptance tests pin to 1 under coalescing).
type Stats struct {
	Hits      int64 // served from cache
	Misses    int64 // led an origin fill
	Coalesced int64 // waited on another request's in-flight fill
	Fills     int64 // origin generations executed (successful or not)
	Admitted  int64 // bodies inserted into the cache
	Rejected  int64 // bodies denied admission (doorkeeper or oversize)
	Evictions int64 // residents displaced by LRU pressure
	Entries   int64 // current resident count
	Bytes     int64 // current resident body bytes
}

// entry is one cached body on the LRU list.
type entry struct {
	key  string
	body []byte
}

// ghost is a doorkeeper record: how often a non-resident key has been
// requested recently.
type ghost struct {
	key   string
	count int
}

// flightCall is one in-progress origin fill that late arrivals of the
// same key can join.
type flightCall struct {
	done    chan struct{}
	body    []byte
	err     error
	waiters int
}

// Cache is a thread-safe, size-aware segment cache. Bodies handed out
// by Get are shared — callers must treat them as immutable.
type Cache struct {
	mu    sync.Mutex
	cfg   Config
	used  int64
	lru   list.List // of *entry; front = most recently used
	byKey map[string]*list.Element

	ghosts  list.List // of *ghost; front = most recently requested
	byGhost map[string]*list.Element

	flight map[string]*flightCall

	stats Stats
}

// New builds a cache. Defaults: AdmitAfter 2, GhostSize 4096.
func New(cfg Config) *Cache {
	if cfg.AdmitAfter <= 0 {
		cfg.AdmitAfter = defaultAdmitAfter
	}
	if cfg.GhostSize <= 0 {
		cfg.GhostSize = defaultGhostSize
	}
	c := &Cache{cfg: cfg, byKey: make(map[string]*list.Element), byGhost: make(map[string]*list.Element)}
	if cfg.Coalesce {
		c.flight = make(map[string]*flightCall)
	}
	return c
}

// Get returns the body for key, generating it with fill on a miss.
// The bool reports a cache hit. With coalescing enabled, concurrent
// Gets of one key run fill exactly once: the first caller generates,
// the rest block until the result (or error) is shared. Fill errors
// are never cached.
func (c *Cache) Get(key string, fill func() ([]byte, error)) ([]byte, bool, error) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		body := el.Value.(*entry).body
		c.mu.Unlock()
		return body, true, nil
	}
	if c.flight != nil {
		if fc, ok := c.flight[key]; ok {
			fc.waiters++
			c.stats.Coalesced++
			c.mu.Unlock()
			<-fc.done
			return fc.body, false, fc.err
		}
		fc := &flightCall{done: make(chan struct{})}
		c.flight[key] = fc
		c.stats.Misses++
		c.mu.Unlock()

		body, err := fill()

		c.mu.Lock()
		c.stats.Fills++
		fc.body, fc.err = body, err
		delete(c.flight, key)
		if err == nil {
			// Every coalesced waiter was real demand for this key: credit
			// it all to the doorkeeper, or a heavily-collapsed key would
			// never look popular enough to admit.
			c.admit(key, body, 1+fc.waiters)
		}
		c.mu.Unlock()
		close(fc.done)
		return body, false, err
	}
	c.stats.Misses++
	c.mu.Unlock()

	body, err := fill()

	c.mu.Lock()
	c.stats.Fills++
	if err == nil {
		c.admit(key, body, 1)
	}
	c.mu.Unlock()
	return body, false, err
}

// admit decides whether a freshly generated body enters the cache.
// Caller holds mu. The doorkeeper counts requests per non-resident
// key; only a key seen AdmitAfter times is worth displacing residents
// for. Oversize bodies are rejected outright.
func (c *Cache) admit(key string, body []byte, demand int) {
	size := int64(len(body))
	if c.cfg.Capacity <= 0 || size > c.cfg.Capacity {
		c.stats.Rejected++
		return
	}
	count := c.bumpGhost(key, demand)
	if count < c.cfg.AdmitAfter {
		c.stats.Rejected++
		return
	}
	c.dropGhost(key)
	// A racing fill of the same key may have been admitted while this
	// body was generated (coalescing off); keep the resident.
	if _, ok := c.byKey[key]; ok {
		return
	}
	for c.used+size > c.cfg.Capacity {
		c.evictOldest()
	}
	c.byKey[key] = c.lru.PushFront(&entry{key: key, body: body})
	c.used += size
	c.stats.Admitted++
	c.stats.Entries = int64(len(c.byKey))
	c.stats.Bytes = c.used
}

// bumpGhost records demand more requests for a non-resident key and
// returns its count, trimming the doorkeeper to GhostSize.
func (c *Cache) bumpGhost(key string, demand int) int {
	if el, ok := c.byGhost[key]; ok {
		g := el.Value.(*ghost)
		g.count += demand
		c.ghosts.MoveToFront(el)
		return g.count
	}
	c.byGhost[key] = c.ghosts.PushFront(&ghost{key: key, count: demand})
	for c.ghosts.Len() > c.cfg.GhostSize {
		tail := c.ghosts.Back()
		delete(c.byGhost, tail.Value.(*ghost).key)
		c.ghosts.Remove(tail)
	}
	return demand
}

// dropGhost forgets a key's doorkeeper record (it became resident).
func (c *Cache) dropGhost(key string) {
	if el, ok := c.byGhost[key]; ok {
		c.ghosts.Remove(el)
		delete(c.byGhost, key)
	}
}

// evictOldest removes the least-recently-used resident. Caller holds
// mu; the cache must be non-empty. Evicted keys restart at the
// doorkeeper — re-admission takes AdmitAfter fresh requests.
func (c *Cache) evictOldest() {
	tail := c.lru.Back()
	if tail == nil {
		return
	}
	e := tail.Value.(*entry)
	c.lru.Remove(tail)
	delete(c.byKey, e.key)
	c.used -= int64(len(e.body))
	c.stats.Evictions++
	c.stats.Entries = int64(len(c.byKey))
	c.stats.Bytes = c.used
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Keys returns resident keys in LRU order, most recent first — the
// observable the deterministic eviction tests pin.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry).key)
	}
	return out
}

// Waiters reports how many Gets are blocked on key's in-flight fill —
// the hook the deterministic coalescing test uses to release the
// leader only once every follower is parked.
func (c *Cache) Waiters(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fc, ok := c.flight[key]; ok {
		return fc.waiters
	}
	return 0
}
