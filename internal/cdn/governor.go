// Overload governor: the server-side half of the resilience layer.
// The cache (cache.go) decides what the origin sees; the Governor
// decides what the *server* sees — an admission controller in front
// of the serving path with three defenses, applied in order:
//
//  1. Per-tenant token-bucket quotas: a hot tenant that exceeds its
//     contracted rate is throttled (429 + Retry-After) before it can
//     displace anyone else's traffic.
//  2. Concurrency admission: at most MaxInflight requests serve at
//     once; up to MaxQueue more wait in per-tenant FIFO queues drained
//     by deficit-round-robin, so queued tenants share released slots
//     fairly instead of first-come-first-served (where a retry storm
//     from one tenant owns the whole queue). Beyond that, requests are
//     shed fast (503 + Retry-After) — an explicit "come back later" is
//     cheaper for everyone than a doomed slow failure.
//  3. Brownout: when the shed-rate EWMA (or queue occupancy) crosses
//     a threshold the governor stops degrading *availability* and
//     starts degrading *quality* — admitted requests carry a demotion
//     hint telling the server to serve a lower bitrate-ladder rung
//     than requested. Smaller bodies mean cheaper service, so
//     effective capacity rises and the shed rate falls; hysteresis
//     (enter high, exit low) keeps the mode from oscillating. This is
//     the Zoom/Webex/Meet adapt-don't-die philosophy applied server
//     side, and the server analogue of the paper's client-side lesson:
//     systems should falter gracefully under pressure, not collapse.
//
// Determinism: like the Cache, the Governor is a mutex-serialized
// state machine over its call sequence. It never consults a clock
// directly — `now` is injected at construction (time.Now in cmd/,
// a virtual clock in the loadgen simulator), so the same Admit/
// Release/Cancel sequence at the same injected instants produces the
// same decisions, byte for byte.
package cdn

import (
	"sort"
	"sync"
	"time"
)

// TenantQuota is one tenant's contracted request rate.
type TenantQuota struct {
	Name string
	// Rate is the sustained request rate in requests/second.
	Rate float64
	// Burst is the bucket depth (default 2x Rate, minimum 1).
	Burst float64
}

// GovernorConfig shapes a Governor. The zero value of any field picks
// a sane default; a zero MaxInflight disables concurrency admission
// (quota and brownout still apply).
type GovernorConfig struct {
	// MaxInflight bounds concurrently admitted requests (0 = unlimited).
	MaxInflight int
	// MaxQueue bounds requests waiting for a slot across all tenants
	// (default 4x MaxInflight). Beyond it, requests are shed.
	MaxQueue int
	// RetryAfter is the backoff hint attached to shed responses
	// (default 1s). Quota throttles hint the tenant's actual refill
	// time instead when it is longer.
	RetryAfter time.Duration
	// Quotas lists per-tenant rate limits. Tenants not listed are
	// unlimited (admission and brownout still apply to them).
	Quotas []TenantQuota
	// DRRQuantum is the deficit credit a tenant earns per dequeue
	// visit (default 1; requests cost 1 each).
	DRRQuantum float64

	// BrownoutEnter is the shed-rate EWMA that activates brownout
	// (0 disables brownout). BrownoutExit deactivates it (default
	// BrownoutEnter/4). BrownoutDemote is how many ladder rungs to
	// step down while active (default 2).
	BrownoutEnter  float64
	BrownoutExit   float64
	BrownoutDemote int
}

// brownoutAlpha is the EWMA weight of one decision: ~1/64 means the
// signal remembers roughly the last 64 admission decisions.
const brownoutAlpha = 1.0 / 64

// AdmitKind is the outcome class of an admission decision.
type AdmitKind int

const (
	// Admitted requests may serve immediately (Release when done).
	Admitted AdmitKind = iota
	// Queued requests hold a Ticket and wait for a Grant.
	Queued
	// Shed requests must be rejected with Decision.Status.
	Shed
)

// Decision is the governor's verdict for one arriving request.
type Decision struct {
	Kind AdmitKind
	// Status is the rejection code when Kind == Shed: 429 for a quota
	// throttle, 503 for a capacity shed.
	Status int
	// RetryAfter is the backoff hint to advertise on a shed.
	RetryAfter time.Duration
	// Demote is the brownout demotion (ladder rungs to step down)
	// when Kind == Admitted.
	Demote int
	// Ticket is the wait handle when Kind == Queued.
	Ticket *Ticket
}

// Grant releases a queued request into service.
type Grant struct {
	// Demote is the brownout demotion at grant time (brownout may
	// have engaged while the request queued).
	Demote int
}

// Ticket is one queued request. The HTTP layer waits on C (buffered:
// the grant is never lost if the waiter races a context cancel); the
// deterministic simulator uses the *Ticket returned by Release.
type Ticket struct {
	C      chan Grant
	tenant string
	seq    int64
}

// tenantState is the per-tenant bookkeeping.
type tenantState struct {
	name    string
	limited bool    // a quota applies
	rate    float64 // tokens/sec
	burst   float64
	tokens  float64
	lastAt  time.Duration // last refill instant

	queue   []*Ticket
	deficit float64

	granted   int64 // quota checks passed
	throttled int64 // quota sheds
}

// GovernorStats snapshots the governor counters.
type GovernorStats struct {
	Admitted  int64 // admitted straight into service
	Granted   int64 // queued, then granted a released slot
	Queued    int64 // sent to the wait queue
	Shed      int64 // capacity sheds (503)
	Throttled int64 // quota sheds (429), summed over tenants
	Canceled  int64 // queued requests withdrawn before grant

	BrownoutEntered int64
	BrownoutExited  int64
	Demoted         int64 // admissions carrying a demotion hint
	BrownoutActive  bool
	ShedEWMA        float64

	Inflight   int
	QueueDepth int

	// PerTenant maps tenant name to quota counters, for every tenant
	// the governor has seen (listed or not).
	PerTenant map[string]TenantCounters
}

// TenantCounters is one tenant's quota ledger.
type TenantCounters struct {
	Granted   int64 // requests that passed the quota check
	Throttled int64 // requests shed by the quota
}

// Governor is the admission controller. Safe for concurrent use; all
// state transitions happen under one mutex (decisions are cheap — the
// serving work they gate happens outside).
type Governor struct {
	mu    sync.Mutex
	cfg   GovernorConfig
	now   func() time.Time
	epoch time.Time

	tenants map[string]*tenantState
	ring    []string // tenants with queued requests, DRR visit order
	rr      int      // next ring index to visit

	inflight int
	queued   int
	seq      int64

	ewma     float64
	brownout bool

	stats GovernorStats
}

// NewGovernor builds a governor on the injected clock (time.Now from
// the binary's main package, or a virtual clock in the simulator).
func NewGovernor(cfg GovernorConfig, now func() time.Time) *Governor {
	if now == nil {
		panic("cdn: NewGovernor needs a clock; pass time.Now from the binary's main package")
	}
	if cfg.MaxInflight > 0 && cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxInflight
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.DRRQuantum <= 0 {
		cfg.DRRQuantum = 1
	}
	if cfg.BrownoutEnter > 0 {
		if cfg.BrownoutExit <= 0 {
			cfg.BrownoutExit = cfg.BrownoutEnter / 4
		}
		if cfg.BrownoutDemote <= 0 {
			cfg.BrownoutDemote = 2
		}
	}
	g := &Governor{cfg: cfg, now: now, epoch: now(), tenants: make(map[string]*tenantState)}
	for _, q := range cfg.Quotas {
		burst := q.Burst
		if burst <= 0 {
			burst = 2 * q.Rate
		}
		if burst < 1 {
			burst = 1
		}
		g.tenants[q.Name] = &tenantState{
			name: q.Name, limited: q.Rate > 0, rate: q.Rate, burst: burst, tokens: burst,
		}
	}
	return g
}

// elapsed returns the injected-clock time since construction.
func (g *Governor) elapsed() time.Duration { return g.now().Sub(g.epoch) }

// tenant returns (creating on first sight) the tenant's state.
// Caller holds mu.
func (g *Governor) tenant(name string) *tenantState {
	ts, ok := g.tenants[name]
	if !ok {
		ts = &tenantState{name: name}
		g.tenants[name] = ts
	}
	return ts
}

// Admit decides for one arriving request of the named tenant.
func (g *Governor) Admit(tenantName string) Decision {
	g.mu.Lock()
	defer g.mu.Unlock()
	now := g.elapsed()
	ts := g.tenant(tenantName)

	// 1. Quota: refill the tenant's bucket to now, then charge one
	// token. An empty bucket is a throttle, not a queue entry — over-
	// quota traffic must not consume shared queue slots.
	if ts.limited {
		dt := (now - ts.lastAt).Seconds()
		ts.lastAt = now
		if ts.tokens += dt * ts.rate; ts.tokens > ts.burst {
			ts.tokens = ts.burst
		}
		if ts.tokens < 1 {
			ts.throttled++
			g.stats.Throttled++
			g.noteShed(true)
			hint := g.cfg.RetryAfter
			if ts.rate > 0 {
				if wait := time.Duration((1 - ts.tokens) / ts.rate * float64(time.Second)); wait > hint {
					hint = wait
				}
			}
			return Decision{Kind: Shed, Status: 429, RetryAfter: hint}
		}
		ts.tokens--
	}
	ts.granted++

	// 2. Concurrency admission.
	if g.cfg.MaxInflight <= 0 || g.inflight < g.cfg.MaxInflight {
		g.inflight++
		g.stats.Admitted++
		g.noteShed(false)
		return Decision{Kind: Admitted, Demote: g.demote()}
	}
	if g.queued < g.cfg.MaxQueue {
		g.seq++
		t := &Ticket{C: make(chan Grant, 1), tenant: tenantName, seq: g.seq}
		if len(ts.queue) == 0 {
			g.ring = append(g.ring, tenantName)
		}
		ts.queue = append(ts.queue, t)
		g.queued++
		g.stats.Queued++
		g.noteShed(false)
		return Decision{Kind: Queued, Ticket: t}
	}
	g.stats.Shed++
	g.noteShed(true)
	return Decision{Kind: Shed, Status: 503, RetryAfter: g.cfg.RetryAfter}
}

// Release completes one admitted request. If requests are queued, the
// freed slot goes to the deficit-round-robin next tenant's oldest
// ticket: the grant is sent on the ticket's channel (for HTTP
// waiters) and the ticket returned (for the simulator). Returns nil
// when nothing was queued.
func (g *Governor) Release() *Ticket {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.inflight > 0 {
		g.inflight--
	}
	t := g.dequeueDRR()
	if t == nil {
		return nil
	}
	g.inflight++
	g.stats.Granted++
	t.C <- Grant{Demote: g.demote()}
	return t
}

// dequeueDRR pops the next queued ticket by deficit round-robin:
// visit tenants in ring order, crediting DRRQuantum per visit; the
// first visited tenant whose deficit covers a request (cost 1) and
// whose queue is non-empty serves. With unit quantum and cost this
// walks at most one full ring lap. Caller holds mu.
func (g *Governor) dequeueDRR() *Ticket {
	for lap := 0; lap < len(g.ring)+1 && g.queued > 0; {
		if len(g.ring) == 0 {
			return nil
		}
		if g.rr >= len(g.ring) {
			g.rr = 0
			lap++
			continue
		}
		name := g.ring[g.rr]
		ts := g.tenants[name]
		if len(ts.queue) == 0 {
			// Drained tenant: drop from the ring without advancing rr
			// (the next tenant shifts into this slot).
			ts.deficit = 0
			g.ring = append(g.ring[:g.rr], g.ring[g.rr+1:]...)
			continue
		}
		ts.deficit += g.cfg.DRRQuantum
		if ts.deficit >= 1 {
			ts.deficit--
			t := ts.queue[0]
			ts.queue = ts.queue[1:]
			g.queued--
			if len(ts.queue) == 0 {
				ts.deficit = 0
				g.ring = append(g.ring[:g.rr], g.ring[g.rr+1:]...)
				if g.rr >= len(g.ring) {
					g.rr = 0
				}
			} else {
				// Advance past the served tenant so the next release
				// visits its ring successor: round-robin, not drain.
				g.rr++
			}
			return t
		}
		g.rr++
	}
	return nil
}

// Cancel withdraws a queued ticket (the waiter gave up: client
// disconnect, attempt timeout). Reports whether the ticket was still
// queued; false means it was already granted — the caller owns a slot
// and must consume the grant and Release.
func (g *Governor) Cancel(t *Ticket) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	ts, ok := g.tenants[t.tenant]
	if !ok {
		return false
	}
	for i, qt := range ts.queue {
		if qt == t {
			ts.queue = append(ts.queue[:i], ts.queue[i+1:]...)
			g.queued--
			g.stats.Canceled++
			if len(ts.queue) == 0 {
				for ri, name := range g.ring {
					if name == t.tenant {
						g.ring = append(g.ring[:ri], g.ring[ri+1:]...)
						if ri < g.rr {
							g.rr--
						} else if g.rr >= len(g.ring) {
							g.rr = 0
						}
						break
					}
				}
				ts.deficit = 0
			}
			return true
		}
	}
	return false
}

// noteShed folds one decision into the brownout signal and applies
// the hysteresis. Caller holds mu.
func (g *Governor) noteShed(shed bool) {
	if g.cfg.BrownoutEnter <= 0 {
		return
	}
	// Queue congestion counts as pressure even before sheds start
	// (enter at 3/4 occupancy), and it feeds the EWMA at half a shed's
	// weight: a congested stretch holds the mode through its own decay
	// time instead of toggling per decision, and exit additionally
	// waits for the queue to drain to 1/4 occupancy — without both,
	// brownout's extra capacity drains the queue, the mode exits, the
	// queue refills, and the governor bang-bangs between ladders.
	congested := g.cfg.MaxQueue > 0 && 4*g.queued >= 3*g.cfg.MaxQueue
	drained := 4*g.queued <= g.cfg.MaxQueue
	x := 0.0
	switch {
	case shed:
		x = 1
	case congested:
		x = 0.5
	}
	g.ewma = brownoutAlpha*x + (1-brownoutAlpha)*g.ewma
	if !g.brownout && (g.ewma >= g.cfg.BrownoutEnter || congested) {
		g.brownout = true
		g.stats.BrownoutEntered++
	} else if g.brownout && g.ewma <= g.cfg.BrownoutExit && drained {
		g.brownout = false
		g.stats.BrownoutExited++
	}
}

// demote returns the active demotion hint. Caller holds mu.
func (g *Governor) demote() int {
	if !g.brownout {
		return 0
	}
	g.stats.Demoted++
	return g.cfg.BrownoutDemote
}

// Stats snapshots the counters.
func (g *Governor) Stats() GovernorStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := g.stats
	s.BrownoutActive = g.brownout
	s.ShedEWMA = g.ewma
	s.Inflight = g.inflight
	s.QueueDepth = g.queued
	s.PerTenant = make(map[string]TenantCounters, len(g.tenants))
	//coalvet:allow maporder copying map to map preserves no order; consumers sort keys before rendering
	for name, ts := range g.tenants {
		s.PerTenant[name] = TenantCounters{Granted: ts.granted, Throttled: ts.throttled}
	}
	return s
}

// MetricsExtras renders the stats as the dash.admit.* / dash.quota.* /
// dash.brownout.* series the server merges into /metrics. Keys are
// stable; encoding/json sorts them on marshal.
func (g *Governor) MetricsExtras() map[string]float64 {
	s := g.Stats()
	out := map[string]float64{
		"dash.admit.admitted":    float64(s.Admitted),
		"dash.admit.granted":     float64(s.Granted),
		"dash.admit.queued":      float64(s.Queued),
		"dash.admit.shed":        float64(s.Shed),
		"dash.admit.canceled":    float64(s.Canceled),
		"dash.admit.inflight":    float64(s.Inflight),
		"dash.admit.queue_depth": float64(s.QueueDepth),
		"dash.brownout.entered":  float64(s.BrownoutEntered),
		"dash.brownout.exited":   float64(s.BrownoutExited),
		"dash.brownout.demoted":  float64(s.Demoted),
	}
	if s.BrownoutActive {
		out["dash.brownout.active"] = 1
	} else {
		out["dash.brownout.active"] = 0
	}
	names := make([]string, 0, len(s.PerTenant))
	for name := range s.PerTenant {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tc := s.PerTenant[name]
		out["dash.quota.granted."+name] = float64(tc.Granted)
		out["dash.quota.throttled."+name] = float64(tc.Throttled)
	}
	return out
}
