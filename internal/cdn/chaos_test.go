package cdn

import (
	"testing"
	"time"

	"coalqoe/internal/faults"
)

// fakeClock drives a Chaos through its schedule without wall time.
type fakeClock struct {
	t     time.Time
	slept []time.Duration
}

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) sleep(d time.Duration)   { f.slept = append(f.slept, d) }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func testChaos(windows []faults.Window, seed int64, horizon time.Duration) (*Chaos, *fakeClock) {
	fc := &fakeClock{t: time.Unix(1700000000, 0)}
	return NewChaosFromWindows(windows, seed, horizon, fc.now, fc.sleep), fc
}

func TestChaosOutageIs5xxBurst(t *testing.T) {
	c, fc := testChaos([]faults.Window{
		{Kind: faults.NetOutage, Start: 10 * time.Second, Duration: 5 * time.Second},
	}, 1, time.Minute)

	if e := c.Gate(); e.Status != 0 || e.OriginDelay != 0 {
		t.Errorf("before window: %+v", e)
	}
	fc.advance(12 * time.Second)
	if e := c.Gate(); e.Status != 503 {
		t.Errorf("inside outage: status = %d, want 503", e.Status)
	}
	fc.advance(4 * time.Second) // t=16s, window [10,15) closed
	if e := c.Gate(); e.Status != 0 {
		t.Errorf("after window: status = %d", e.Status)
	}
	if s := c.Stats(); s.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", s.Rejected)
	}
}

func TestChaosLossRateBoundaries(t *testing.T) {
	mk := func(rate float64) *Chaos {
		c, fc := testChaos([]faults.Window{
			{Kind: faults.NetLoss, Start: 0, Duration: time.Minute, Severity: rate},
		}, 7, time.Minute)
		fc.advance(time.Second)
		return c
	}
	c := mk(1.0)
	for i := 0; i < 50; i++ {
		if e := c.Gate(); e.Status != 502 {
			t.Fatalf("loss rate 1.0: request %d passed (status %d)", i, e.Status)
		}
	}
	c = mk(0)
	for i := 0; i < 50; i++ {
		if e := c.Gate(); e.Status != 0 {
			t.Fatalf("loss rate 0: request %d dropped", i)
		}
	}
	// Intermediate rates drop roughly the advertised fraction,
	// deterministically in arrival order.
	c = mk(0.3)
	dropped := 0
	for i := 0; i < 1000; i++ {
		if c.Gate().Status == 502 {
			dropped++
		}
	}
	if dropped < 200 || dropped > 400 {
		t.Errorf("loss rate 0.3 dropped %d/1000", dropped)
	}
	c2 := mk(0.3)
	dropped2 := 0
	for i := 0; i < 1000; i++ {
		if c2.Gate().Status == 502 {
			dropped2++
		}
	}
	if dropped != dropped2 {
		t.Errorf("loss decisions not deterministic in arrival order: %d vs %d", dropped, dropped2)
	}
}

func TestChaosIOStallIsOriginDelay(t *testing.T) {
	c, fc := testChaos([]faults.Window{
		{Kind: faults.IOStall, Start: 0, Duration: time.Minute, Severity: 6},
	}, 1, time.Minute)
	fc.advance(time.Second)
	e := c.Gate()
	if want := 5 * nominalOriginDelay; e.OriginDelay != want {
		t.Errorf("origin delay = %v, want %v ((factor-1) x nominal)", e.OriginDelay, want)
	}
	if e.Status != 0 {
		t.Errorf("iostall must not reject: status %d", e.Status)
	}
	// Delay goes through the injected sleep.
	c.Delay(e.OriginDelay)
	if len(fc.slept) != 1 || fc.slept[0] != e.OriginDelay {
		t.Errorf("slept %v", fc.slept)
	}
	if s := c.Stats(); s.Stalled != 1 {
		t.Errorf("stalled = %d", s.Stalled)
	}
}

func TestChaosMemSpikeIsResponseLatency(t *testing.T) {
	c, fc := testChaos([]faults.Window{
		{Kind: faults.MemSpike, Start: 0, Duration: time.Minute, Severity: 400 << 20},
	}, 1, time.Minute)
	fc.advance(time.Second)
	if e := c.Gate(); e.Status != 0 {
		t.Errorf("memspike must not reject: %+v", e)
	}
	// 400 MiB / 32 MiB-per-ms = 12.5ms of injected latency.
	if len(fc.slept) != 1 || fc.slept[0] != 12500*time.Microsecond {
		t.Errorf("slept %v, want [12.5ms]", fc.slept)
	}
	if s := c.Stats(); s.Delayed != 1 {
		t.Errorf("delayed = %d", s.Delayed)
	}
}

func TestChaosScheduleWraps(t *testing.T) {
	c, fc := testChaos([]faults.Window{
		{Kind: faults.NetOutage, Start: 10 * time.Second, Duration: 5 * time.Second},
	}, 1, time.Minute)
	// Two horizons later, the same offset reproduces the same storm.
	fc.advance(2*time.Minute + 12*time.Second)
	if e := c.Gate(); e.Status != 503 {
		t.Errorf("wrapped schedule: status = %d, want 503", e.Status)
	}
}

func TestChaosFromSpecDeterministic(t *testing.T) {
	fc := &fakeClock{t: time.Unix(1700000000, 0)}
	a := NewChaos(faults.NetFlaky(), 42, 10*time.Minute, fc.now, fc.sleep)
	b := faults.NetFlaky().Windows(42, 10*time.Minute)
	if got := len(a.outages) + len(a.losses); got != len(b) {
		t.Errorf("chaos holds %d windows, spec materialized %d", got, len(b))
	}
	if len(a.outages) == 0 || len(a.losses) == 0 {
		t.Error("netflaky should carry both outage and loss windows")
	}
}

// TestChaosHorizonStraddleReplaysAcrossWraps: a window crossing the
// horizon boundary must fire identically on every pass. Gate reduces
// time to `elapsed % horizon`, so the wrapped-past-the-boundary part
// of the window only exists if the constructor splits it into a tail
// piece and a head piece (regression: it used to fire on the first
// pass only via End() > horizon, then vanish forever after).
func TestChaosHorizonStraddleReplaysAcrossWraps(t *testing.T) {
	const horizon = 10 * time.Second
	c, fc := testChaos([]faults.Window{
		// [8s, 12s) against a 10s horizon: tail [8,10) + head [0,2).
		{Kind: faults.NetOutage, Start: 8 * time.Second, Duration: 4 * time.Second},
		// An IOStall straddler too: [9s, 11s) -> tail [9,10) + head [0,1).
		{Kind: faults.IOStall, Start: 9 * time.Second, Duration: 2 * time.Second, Severity: 3},
	}, 1, horizon)

	probe := func(off time.Duration) Effect {
		fc.t = time.Unix(1700000000, 0).Add(off)
		return c.Gate()
	}
	// Offsets probed on every pass: inside the head, in the clear
	// middle, and inside the tail.
	offsets := []time.Duration{
		500 * time.Millisecond,  // head: outage + stall
		1500 * time.Millisecond, // head: outage only
		5 * time.Second,         // clear
		8500 * time.Millisecond, // tail: outage only
		9500 * time.Millisecond, // tail: outage + stall
	}
	var first []Effect
	for pass := 0; pass < 3; pass++ {
		for i, off := range offsets {
			e := probe(time.Duration(pass)*horizon + off)
			if pass == 0 {
				first = append(first, e)
				continue
			}
			if e != first[i] {
				t.Errorf("pass %d offset %v: effect %+v != first-pass %+v", pass, off, e, first[i])
			}
		}
	}
	// And the verdicts themselves are the straddle semantics: the head
	// offsets are inside the wrapped window.
	if first[0].Status != 503 || first[1].Status != 503 {
		t.Errorf("head of straddling outage not active: %+v %+v", first[0], first[1])
	}
	if first[2].Status != 0 || first[2].OriginDelay != 0 {
		t.Errorf("clear middle not clear: %+v", first[2])
	}
	if first[3].Status != 503 || first[4].Status != 503 {
		t.Errorf("tail of straddling outage not active: %+v %+v", first[3], first[4])
	}
}

// TestChaosWindowBeyondHorizonIsNormalized: a hand-built window placed
// entirely past the horizon is folded to where the repeating schedule
// observes it, not silently dead.
func TestChaosWindowBeyondHorizonIsNormalized(t *testing.T) {
	c, fc := testChaos([]faults.Window{
		{Kind: faults.NetOutage, Start: 13 * time.Second, Duration: 2 * time.Second},
	}, 1, 10*time.Second)
	fc.advance(4 * time.Second) // 13s % 10s = 3s -> window [3s, 5s)
	if e := c.Gate(); e.Status != 503 {
		t.Errorf("normalized window inactive: %+v", e)
	}
	fc.advance(2 * time.Second) // 6s: outside
	if e := c.Gate(); e.Status != 0 {
		t.Errorf("outside normalized window: %+v", e)
	}
}
