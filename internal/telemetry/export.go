package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"time"
)

// Series is one dumped time series: parallel Times/Values slices in
// chronological order. Pure data — no simulation pointers — so a Dump
// may ride in exp.Result without violating the resultretain rule.
type Series struct {
	Name   string
	Times  []time.Duration
	Values []float64
}

// Dump is the exportable result of a sampled run: all series sorted by
// name, plus whole-run histogram snapshots.
type Dump struct {
	Period     time.Duration
	Series     []Series
	Histograms []HistogramSnapshot
}

// Find returns the named series, or nil.
func (d *Dump) Find(name string) *Series {
	for i := range d.Series {
		if d.Series[i].Name == name {
			return &d.Series[i]
		}
	}
	return nil
}

// sampleTimes returns the sorted union of sample instants across all
// series. Series registered mid-run start late; their earlier cells
// are emitted empty.
func (d *Dump) sampleTimes() []time.Duration {
	var all []time.Duration
	for _, s := range d.Series {
		all = append(all, s.Times...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	out := all[:0]
	for i, t := range all {
		if i == 0 || t != all[i-1] {
			out = append(out, t)
		}
	}
	return out
}

// formatValue renders a sample with the shortest exact representation,
// so emitted files are byte-stable and diff-friendly.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatSeconds renders a sample instant as seconds with microsecond
// precision (sim time is event-aligned; fixed width diffs cleanly).
func formatSeconds(t time.Duration) string {
	return strconv.FormatFloat(t.Seconds(), 'f', 6, 64)
}

// WriteCSV emits the dump in wide CSV form: one `t_s` column plus one
// column per series in sorted name order, one row per sample instant.
// Cells where a series has no sample (registered later, or evicted
// from its ring) are empty. The byte stream is a pure function of the
// dump, which is what lets CI diff serial vs. parallel runs.
func (d *Dump) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("t_s")
	for _, s := range d.Series {
		bw.WriteByte(',')
		bw.WriteString(s.Name)
	}
	bw.WriteByte('\n')

	times := d.sampleTimes()
	// Per-series cursor: series times are chronological, so one linear
	// walk aligns every series against the union of instants.
	cursor := make([]int, len(d.Series))
	for _, t := range times {
		bw.WriteString(formatSeconds(t))
		for i := range d.Series {
			s := &d.Series[i]
			bw.WriteByte(',')
			for cursor[i] < len(s.Times) && s.Times[cursor[i]] < t {
				cursor[i]++
			}
			if cursor[i] < len(s.Times) && s.Times[cursor[i]] == t {
				bw.WriteString(formatValue(s.Values[cursor[i]]))
				cursor[i]++
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// JSON wire shapes. encoding/json emits struct fields in declaration
// order and sorts map keys, so marshaling is deterministic.

type seriesJSON struct {
	Name    string       `json:"name"`
	Samples [][2]float64 `json:"samples"` // [t_sec, value]
}

type bucketJSON struct {
	LeMicros int64 `json:"le_us"`
	Count    int64 `json:"count"`
}

type histogramJSON struct {
	Name      string       `json:"name"`
	Count     int64        `json:"count"`
	SumMicros int64        `json:"sum_us"`
	Buckets   []bucketJSON `json:"buckets"`
}

type dumpJSON struct {
	PeriodSec  float64         `json:"period_sec"`
	Series     []seriesJSON    `json:"series"`
	Histograms []histogramJSON `json:"histograms,omitempty"`
}

// WriteJSON emits the dump as an indented JSON document with series in
// sorted name order, times in seconds, and histogram buckets labeled
// by their upper edge in microseconds.
func (d *Dump) WriteJSON(w io.Writer) error {
	doc := dumpJSON{PeriodSec: d.Period.Seconds()}
	doc.Series = make([]seriesJSON, 0, len(d.Series))
	for _, s := range d.Series {
		sj := seriesJSON{Name: s.Name, Samples: make([][2]float64, 0, len(s.Times))}
		for i, t := range s.Times {
			sj.Samples = append(sj.Samples, [2]float64{t.Seconds(), s.Values[i]})
		}
		doc.Series = append(doc.Series, sj)
	}
	for _, h := range d.Histograms {
		hj := histogramJSON{Name: h.Name, Count: h.Count, SumMicros: int64(h.Sum / time.Microsecond)}
		for b, c := range h.Counts {
			if c == 0 {
				continue
			}
			hj.Buckets = append(hj.Buckets, bucketJSON{LeMicros: BucketUpperMicros(b), Count: c})
		}
		doc.Histograms = append(doc.Histograms, hj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
