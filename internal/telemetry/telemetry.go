// Package telemetry is the simulator's observability layer: a
// deterministic, near-zero-overhead metrics registry plus a sim-clock
// sampler that turns registered instruments into ring-buffered time
// series — the in-simulation analog of the paper's SignalCapturer
// (§3: /proc/meminfo, /proc/vmstat, smaps_rollup every few seconds)
// and of the Perfetto counter tracks its root-cause leg reads (§5:
// pgscan/pgsteal, writeback, free memory next to thread states).
//
// Design constraints, in order:
//
//   - Disabled must be free. Every subsystem holds nil instrument
//     pointers until Instrument(reg) is called; all instrument methods
//     are nil-safe no-ops, so the disabled fast path is a single
//     pointer test — no atomics, no interface dispatch, no allocation
//     per event. Benchmarks in bench_test.go hold this to <2% on a
//     full video run.
//   - Deterministic. The registry is single-goroutine like the rest of
//     the simulation (one registry per device, never shared across
//     runs), samples are taken on the virtual clock only, and every
//     emission path iterates series in sorted name order. The package
//     is clean under coalvet, and exp's -race tests assert that dumps
//     are byte-identical between serial and 8-worker runs.
//   - Values are float64 at the sampling boundary. Counters are int64
//     internally (exact), gauges float64; both surface through one
//     sorted (name, value) snapshot so exporters need a single shape.
//
// Concurrency: a Registry is NOT safe for concurrent use, by design —
// the simulation is single-goroutine. The one real-HTTP user
// (cmd/dashserve) wraps its registry in its own mutex.
package telemetry

import (
	"fmt"
	"math/bits"
	"sort"
	"time"
)

// Counter is a monotonically increasing event count (pgscan, kills,
// segment requests). The zero pointer is a valid disabled counter:
// every method on a nil *Counter is a no-op, which is the whole
// telemetry-off fast path.
type Counter struct {
	n int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n++
}

// Add adds n (negative deltas are a caller bug but not checked: the
// hot path stays branch-minimal).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.n += n
}

// Value returns the current count; 0 on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Gauge is an instantaneous level that can move both ways (in-flight
// requests, balloon size). Nil gauges are disabled no-ops.
type Gauge struct {
	v float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Add moves the gauge by delta (use +1/-1 for in-flight tracking).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	g.v += delta
}

// Max raises the gauge to v if v exceeds the current value — a
// high-watermark gauge (peak queue backlog).
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	if v > g.v {
		g.v = v
	}
}

// Value returns the current level; 0 on a nil gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// histBuckets is the fixed bucket count for Histogram: power-of-two
// microsecond buckets 1µs … ~36min, which covers everything from a
// single 4 KiB eMMC read to a whole stalled writeback burst.
const histBuckets = 32

// Histogram records durations in fixed log-spaced (power-of-two
// microsecond) buckets: bucket 0 holds observations under 1µs, bucket
// k holds [2^(k-1), 2^k) µs. Fixed buckets keep Observe allocation-
// free and make merged output trivially stable. Nil histograms are
// disabled no-ops.
type Histogram struct {
	counts [histBuckets]int64
	count  int64
	sum    time.Duration
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	b := bits.Len64(uint64(d / time.Microsecond))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.counts[b]++
	h.count++
	h.sum += d
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1) from
// the bucket boundaries: the upper edge of the bucket containing the
// q-th observation. Resolution is a factor of two, which is plenty for
// "p99 grew from 2ms to 260ms" style findings.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil || h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(h.count-1)) + 1
	var seen int64
	for b, c := range h.counts {
		seen += c
		if seen >= rank {
			return bucketUpper(b)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// bucketUpper returns the exclusive upper edge of bucket b.
func bucketUpper(b int) time.Duration {
	return time.Duration(int64(1)<<uint(b)) * time.Microsecond
}

// BucketUpperMicros returns the upper edge of bucket b in microseconds
// (the le_us field of exported snapshots).
func BucketUpperMicros(b int) int64 { return int64(1) << uint(b) }

// Sample is one (name, value) pair from a registry snapshot.
type Sample struct {
	Name  string
	Value float64
}

// HistogramSnapshot is the exportable state of one named histogram.
// Buckets are truncated after the last non-empty one.
type HistogramSnapshot struct {
	Name   string
	Counts []int64 // counts[b] observations in [2^(b-1), 2^b) µs
	Count  int64
	Sum    time.Duration
}

// Registry holds a device's instruments. Instruments register once by
// name and are looked up (or re-fetched — registration is idempotent
// per kind) with Counter/Gauge/Histogram; derived or read-only series
// register a SampleFunc instead, which costs nothing until sampled.
//
// A nil *Registry is the disabled state: every method returns the
// corresponding nil (disabled) instrument, so call sites never branch.
//
// Series names are dotted lowercase, subsystem first ("mem.pgscan",
// "blockio.queue_depth_us", "player.buffer_ms"), so the sorted
// emission order groups related series — the property LINTING.md's
// maporder rule exists to protect.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	funcs    map[string]func() float64
	hists    map[string]*Histogram

	names      []string // sorted scalar series names; rebuilt when dirty
	namesDirty bool

	// gen counts scalar-source mutations (new counter/gauge, any
	// SampleFunc registration — including a replacement, which changes
	// what a name resolves to without touching the name set). The
	// sampler keys its resolved source cache on it.
	gen uint64
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		funcs:    make(map[string]func() float64),
		hists:    make(map[string]*Histogram),
	}
}

// checkName panics when a name is already registered under a different
// instrument kind — always a wiring bug, and silently shadowing one
// kind with another would corrupt the series.
func (r *Registry) checkName(name, kind string) {
	if _, ok := r.counters[name]; ok && kind != "counter" {
		panic(fmt.Sprintf("telemetry: %q already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		panic(fmt.Sprintf("telemetry: %q already registered as a gauge", name))
	}
	if _, ok := r.funcs[name]; ok && kind != "func" {
		panic(fmt.Sprintf("telemetry: %q already registered as a sample func", name))
	}
	if _, ok := r.hists[name]; ok && kind != "histogram" {
		panic(fmt.Sprintf("telemetry: %q already registered as a histogram", name))
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a disabled counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkName(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	r.namesDirty = true
	r.gen++
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// (a disabled gauge) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkName(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	r.namesDirty = true
	r.gen++
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil (a disabled histogram) on a nil registry. Histograms are
// exported whole at dump time, not sampled into series.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkName(name, "histogram")
	h := &Histogram{}
	r.hists[name] = h
	return h
}

// SampleFunc registers a derived series: fn is invoked at each sampler
// tick. This is the preferred instrument for state the simulation
// already tracks (free pages, buffer level, cumulative kernel
// counters) — it adds zero cost to the simulation's hot paths.
// Re-registering a name replaces the function (a respawned player
// session re-binds its series). No-op on a nil registry. fn must be
// read-only with respect to simulation state: sampling must not
// perturb the run.
func (r *Registry) SampleFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	if _, ok := r.funcs[name]; !ok {
		r.checkName(name, "func")
		r.namesDirty = true
	}
	r.funcs[name] = fn
	r.gen++
}

// Names returns all scalar series names (counters, gauges, sample
// funcs — not histograms) in sorted order. The slice is owned by the
// registry; callers must not mutate it.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	if r.namesDirty {
		var names []string
		for name := range r.counters {
			names = append(names, name)
		}
		for name := range r.gauges {
			names = append(names, name)
		}
		for name := range r.funcs {
			names = append(names, name)
		}
		sort.Strings(names)
		r.names = names
		r.namesDirty = false
	}
	return r.names
}

// Value returns the current value of the named scalar series.
func (r *Registry) Value(name string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	if c, ok := r.counters[name]; ok {
		return float64(c.n), true
	}
	if g, ok := r.gauges[name]; ok {
		return g.v, true
	}
	if fn, ok := r.funcs[name]; ok {
		return fn(), true
	}
	return 0, false
}

// Values snapshots every scalar series as sorted (name, value) pairs —
// the shape /metrics endpoints and tests consume.
func (r *Registry) Values() []Sample {
	if r == nil {
		return nil
	}
	names := r.Names()
	out := make([]Sample, 0, len(names))
	for _, name := range names {
		v, _ := r.Value(name)
		out = append(out, Sample{Name: name, Value: v})
	}
	return out
}

// Histograms snapshots every histogram, sorted by name, with bucket
// slices truncated after the last non-empty bucket.
func (r *Registry) Histograms() []HistogramSnapshot {
	if r == nil {
		return nil
	}
	var names []string
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]HistogramSnapshot, 0, len(names))
	for _, name := range names {
		h := r.hists[name]
		last := -1
		for b, c := range h.counts {
			if c > 0 {
				last = b
			}
		}
		snap := HistogramSnapshot{Name: name, Count: h.count, Sum: h.sum}
		if last >= 0 {
			snap.Counts = append(snap.Counts, h.counts[:last+1]...)
		}
		out = append(out, snap)
	}
	return out
}
