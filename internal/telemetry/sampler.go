package telemetry

import (
	"sort"
	"time"

	"coalqoe/internal/simclock"
)

// DefaultPeriod is the sampling cadence when Config.Period is zero:
// the paper's SignalCapturer samples /proc/meminfo and /proc/vmstat
// every 3 s in the MP-Simulator experiments (§4.1).
const DefaultPeriod = 3 * time.Second

// DefaultRingCapacity bounds retained samples per series when
// Config.RingCapacity is zero. At the 3 s default cadence this holds
// ~3.4 hours of simulation — effectively unbounded for video-session
// runs while keeping a hard memory ceiling for fleet-length ones.
const DefaultRingCapacity = 4096

// Config enables telemetry and sets the sampling parameters. A nil
// *Config anywhere in the option plumbing means "telemetry off".
type Config struct {
	// Period is the sampling cadence on the sim clock. Defaults to
	// DefaultPeriod (3 s, the SignalCapturer cadence).
	Period time.Duration
	// RingCapacity is the maximum retained samples per series; when a
	// ring fills, the oldest samples are dropped. Defaults to
	// DefaultRingCapacity.
	RingCapacity int
}

func (c Config) withDefaults() Config {
	if c.Period <= 0 {
		c.Period = DefaultPeriod
	}
	if c.RingCapacity <= 0 {
		c.RingCapacity = DefaultRingCapacity
	}
	return c
}

// ring is a fixed-capacity circular buffer of (time, value) samples.
type ring struct {
	times []time.Duration
	vals  []float64
	head  int // next write position
	n     int // occupied
}

func newRing(capacity int) *ring {
	return &ring{times: make([]time.Duration, capacity), vals: make([]float64, capacity)}
}

func (r *ring) push(t time.Duration, v float64) {
	r.times[r.head] = t
	r.vals[r.head] = v
	r.head = (r.head + 1) % len(r.times)
	if r.n < len(r.times) {
		r.n++
	}
}

// unroll appends the ring's samples in chronological order.
func (r *ring) unroll() (times []time.Duration, vals []float64) {
	times = make([]time.Duration, 0, r.n)
	vals = make([]float64, 0, r.n)
	start := (r.head - r.n + len(r.times)) % len(r.times)
	for i := 0; i < r.n; i++ {
		j := (start + i) % len(r.times)
		times = append(times, r.times[j])
		vals = append(vals, r.vals[j])
	}
	return times, vals
}

// Sampler snapshots a registry's scalar series on the sim clock. Each
// named series gets its own ring, created the first time the series
// appears in the registry, so instruments registered mid-run (a
// late-started player session) simply begin at the next tick.
//
// Sampling is read-only with respect to the simulation: a run's
// trajectory is identical with the sampler on or off (asserted by
// TestTelemetryDoesNotPerturbRun in internal/exp).
type Sampler struct {
	clock  *simclock.Clock
	reg    *Registry
	cfg    Config
	series map[string]*ring
	event  *simclock.Event

	// plan is the resolved sampling order — each scalar source bound to
	// its ring — cached against the registry's mutation generation so a
	// steady-state Sample() touches no maps at all.
	plan    []source
	planGen uint64
}

// source is one resolved scalar series: exactly one of counter, gauge
// or fn is set.
type source struct {
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	rg      *ring
}

// NewSampler registers a repeating sampling event on the clock (first
// tick after one period) and returns the sampler. Stop cancels it.
func NewSampler(clock *simclock.Clock, reg *Registry, cfg Config) *Sampler {
	s := &Sampler{
		clock:  clock,
		reg:    reg,
		cfg:    cfg.withDefaults(),
		series: make(map[string]*ring),
	}
	s.event = clock.Every(s.cfg.Period, s.Sample)
	return s
}

// Period returns the effective sampling period.
func (s *Sampler) Period() time.Duration { return s.cfg.Period }

// Registry returns the registry the sampler reads.
func (s *Sampler) Registry() *Registry { return s.reg }

// Sample takes one snapshot now. The periodic event calls it; callers
// may also invoke it directly for an edge sample at run end, so the
// final state is always in the series even when the run length is not
// a period multiple.
func (s *Sampler) Sample() {
	if s.reg == nil {
		return
	}
	if s.planGen != s.reg.gen || s.plan == nil {
		s.rebuildPlan()
	}
	now := s.clock.Now()
	for i := range s.plan {
		src := &s.plan[i]
		var v float64
		switch {
		case src.counter != nil:
			v = float64(src.counter.n)
		case src.gauge != nil:
			v = src.gauge.v
		default:
			v = src.fn()
		}
		src.rg.push(now, v)
	}
}

// rebuildPlan re-resolves every scalar series to its source and ring.
// Runs only when the registry mutated since the previous sample (in
// practice: the first tick, plus once whenever a subsystem registers
// instruments mid-run).
func (s *Sampler) rebuildPlan() {
	names := s.reg.Names()
	s.plan = s.plan[:0]
	for _, name := range names {
		src := source{rg: s.series[name]}
		if src.rg == nil {
			src.rg = newRing(s.cfg.RingCapacity)
			s.series[name] = src.rg
		}
		if c, ok := s.reg.counters[name]; ok {
			src.counter = c
		} else if g, ok := s.reg.gauges[name]; ok {
			src.gauge = g
		} else if fn, ok := s.reg.funcs[name]; ok {
			src.fn = fn
		} else {
			continue
		}
		s.plan = append(s.plan, src)
	}
	s.planGen = s.reg.gen
}

// Stop cancels future periodic samples. Collected series remain
// dumpable.
func (s *Sampler) Stop() { s.event.Cancel() }

// Dump extracts everything collected so far — ring-buffered series in
// sorted name order plus whole-run histogram snapshots — as plain
// data, safe to retain in exp.Result without dragging the device
// graph along.
func (s *Sampler) Dump() *Dump {
	var names []string
	for name := range s.series {
		names = append(names, name)
	}
	sort.Strings(names)
	d := &Dump{Period: s.cfg.Period}
	for _, name := range names {
		times, vals := s.series[name].unroll()
		d.Series = append(d.Series, Series{Name: name, Times: times, Values: vals})
	}
	d.Histograms = s.reg.Histograms()
	return d
}
