package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"coalqoe/internal/simclock"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	g := reg.Gauge("y")
	h := reg.Histogram("z")
	reg.SampleFunc("f", func() float64 { return 1 })
	c.Inc()
	c.Add(10)
	g.Set(3)
	g.Add(1)
	g.Max(9)
	h.Observe(time.Millisecond)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if reg.Names() != nil || reg.Values() != nil || reg.Histograms() != nil {
		t.Fatal("nil registry snapshots must be empty")
	}
	if _, ok := reg.Value("x"); ok {
		t.Fatal("nil registry must not resolve values")
	}
}

func TestCounterGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("a.count")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := reg.Counter("a.count"); again != c {
		t.Fatal("re-registration must return the same counter")
	}
	g := reg.Gauge("a.level")
	g.Set(2.5)
	g.Add(-1)
	g.Max(1.0) // below current: no-op
	g.Max(7.5)
	if g.Value() != 7.5 {
		t.Fatalf("gauge = %v, want 7.5", g.Value())
	}
}

func TestCrossKindRegistrationPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge over a counter must panic")
		}
	}()
	reg.Gauge("dup")
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat")
	h.Observe(0)                     // bucket 0
	h.Observe(500 * time.Nanosecond) // <1µs: bucket 0
	h.Observe(time.Microsecond)      // [1,2)µs: bucket 1
	h.Observe(3 * time.Microsecond)  // [2,4)µs: bucket 2
	h.Observe(time.Millisecond)      // 1000µs: bucket 10 ([512,1024)µs is bucket 10? Len64(1000)=10)
	h.Observe(-time.Second)          // clamped to 0
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	snaps := reg.Histograms()
	if len(snaps) != 1 || snaps[0].Name != "lat" {
		t.Fatalf("snapshot = %+v", snaps)
	}
	s := snaps[0]
	if s.Counts[0] != 3 || s.Counts[1] != 1 || s.Counts[2] != 1 {
		t.Fatalf("bucket counts = %v", s.Counts)
	}
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total != 6 {
		t.Fatalf("bucket total = %d, want 6", total)
	}
	// Quantiles: the max observation is 1ms → its bucket's upper edge.
	if q := h.Quantile(1); q < time.Millisecond || q > 2*time.Millisecond {
		t.Fatalf("p100 = %v, want (1ms, 2ms]", q)
	}
	if q := h.Quantile(0); q != time.Microsecond {
		t.Fatalf("p0 = %v, want 1µs (upper edge of bucket 0)", q)
	}
	if h.Mean() <= 0 {
		t.Fatalf("mean = %v, want > 0", h.Mean())
	}
}

func TestNamesSortedAndValues(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("b.gauge").Set(2)
	reg.Counter("a.count").Add(1)
	reg.SampleFunc("c.func", func() float64 { return 3 })
	want := []string{"a.count", "b.gauge", "c.func"}
	got := reg.Names()
	if len(got) != len(want) {
		t.Fatalf("names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
	vals := reg.Values()
	if vals[0].Value != 1 || vals[1].Value != 2 || vals[2].Value != 3 {
		t.Fatalf("values = %+v", vals)
	}
	// Adding a series invalidates the sorted cache.
	reg.Counter("0.first")
	if n := reg.Names(); n[0] != "0.first" {
		t.Fatalf("names after add = %v", n)
	}
}

func TestSamplerCollectsSeries(t *testing.T) {
	clock := simclock.New(1)
	reg := NewRegistry()
	c := reg.Counter("events")
	s := NewSampler(clock, reg, Config{Period: time.Second})
	if s.Period() != time.Second || s.Registry() != reg {
		t.Fatal("sampler config not applied")
	}
	clock.Every(time.Second/2, func() { c.Inc() })
	clock.RunUntil(3 * time.Second)

	d := s.Dump()
	es := d.Find("events")
	if es == nil {
		t.Fatal("events series missing")
	}
	if len(es.Times) != 3 {
		t.Fatalf("samples = %d, want 3", len(es.Times))
	}
	// At shared instants events fire in registration order: the
	// sampler (registered first) samples before the coincident tick,
	// so each sample sees the odd tick counts 1, 3, 5.
	for i, want := range []float64{1, 3, 5} {
		if es.Values[i] != want {
			t.Fatalf("sample %d = %v, want %v (series %v)", i, es.Values[i], want, es.Values)
		}
	}
	if es.Times[0] != time.Second || es.Times[2] != 3*time.Second {
		t.Fatalf("times = %v", es.Times)
	}
}

func TestSamplerLateRegistrationAndEdgeSample(t *testing.T) {
	clock := simclock.New(1)
	reg := NewRegistry()
	s := NewSampler(clock, reg, Config{Period: time.Second})
	reg.Gauge("early").Set(1)
	clock.At(1500*time.Millisecond, func() { reg.Gauge("late").Set(9) })
	clock.RunUntil(2500 * time.Millisecond)
	s.Sample() // edge sample at 2.5s, off the period grid
	d := s.Dump()
	early, late := d.Find("early"), d.Find("late")
	if early == nil || len(early.Times) != 3 {
		t.Fatalf("early = %+v", early)
	}
	if late == nil || len(late.Times) != 2 {
		t.Fatalf("late = %+v (want samples at 2s and 2.5s)", late)
	}
	if late.Times[0] != 2*time.Second || late.Times[1] != 2500*time.Millisecond {
		t.Fatalf("late times = %v", late.Times)
	}
}

func TestSamplerRingEviction(t *testing.T) {
	clock := simclock.New(1)
	reg := NewRegistry()
	tick := 0
	reg.SampleFunc("t", func() float64 { tick++; return float64(tick) })
	s := NewSampler(clock, reg, Config{Period: time.Second, RingCapacity: 3})
	clock.RunUntil(10 * time.Second)
	d := s.Dump()
	ts := d.Find("t")
	if len(ts.Times) != 3 {
		t.Fatalf("retained = %d, want 3", len(ts.Times))
	}
	for i, want := range []float64{8, 9, 10} {
		if ts.Values[i] != want {
			t.Fatalf("ring = %v, want [8 9 10]", ts.Values)
		}
	}
	if ts.Times[0] != 8*time.Second {
		t.Fatalf("ring times = %v", ts.Times)
	}
}

func TestSamplerStop(t *testing.T) {
	clock := simclock.New(1)
	reg := NewRegistry()
	reg.Gauge("g").Set(1)
	s := NewSampler(clock, reg, Config{Period: time.Second})
	clock.RunUntil(2 * time.Second)
	s.Stop()
	clock.RunUntil(10 * time.Second)
	if got := len(s.Dump().Find("g").Times); got != 2 {
		t.Fatalf("samples after stop = %d, want 2", got)
	}
}

func TestWriteCSV(t *testing.T) {
	d := &Dump{
		Period: time.Second,
		Series: []Series{
			{Name: "a", Times: []time.Duration{time.Second, 2 * time.Second}, Values: []float64{1, 2}},
			{Name: "b", Times: []time.Duration{2 * time.Second}, Values: []float64{0.5}},
		},
	}
	var sb strings.Builder
	if err := d.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "t_s,a,b\n1.000000,1,\n2.000000,2,0.5\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}

func TestWriteJSONValid(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("h").Observe(5 * time.Microsecond)
	clock := simclock.New(1)
	reg.Counter("c").Add(2)
	s := NewSampler(clock, reg, Config{Period: time.Second})
	clock.RunUntil(2 * time.Second)
	var sb strings.Builder
	if err := s.Dump().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		PeriodSec float64 `json:"period_sec"`
		Series    []struct {
			Name    string       `json:"name"`
			Samples [][2]float64 `json:"samples"`
		} `json:"series"`
		Histograms []struct {
			Name    string `json:"name"`
			Count   int64  `json:"count"`
			Buckets []struct {
				LeMicros int64 `json:"le_us"`
				Count    int64 `json:"count"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if doc.PeriodSec != 1 || len(doc.Series) != 1 || doc.Series[0].Name != "c" {
		t.Fatalf("doc = %+v", doc)
	}
	if len(doc.Histograms) != 1 || doc.Histograms[0].Buckets[0].LeMicros != 8 {
		t.Fatalf("histograms = %+v (5µs lands in (4,8]µs)", doc.Histograms)
	}
}

func TestDumpDeterministic(t *testing.T) {
	build := func() string {
		clock := simclock.New(7)
		reg := NewRegistry()
		c := reg.Counter("z.count")
		reg.SampleFunc("a.func", func() float64 { return float64(c.Value()) * 0.5 })
		clock.Every(700*time.Millisecond, func() { c.Add(3) })
		s := NewSampler(clock, reg, Config{Period: time.Second})
		clock.RunUntil(30 * time.Second)
		var sb strings.Builder
		if err := s.Dump().WriteCSV(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if build() != build() {
		t.Fatal("identical runs must emit identical bytes")
	}
}

// BenchmarkCounterDisabled is the telemetry-off fast path: a nil
// counter. The acceptance bar is zero allocs/op and low single-digit
// nanoseconds.
func BenchmarkCounterDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
}

// BenchmarkSampleTick measures one sampler tick over a registry the
// size of a fully instrumented device (~30 series).
func BenchmarkSampleTick(b *testing.B) {
	clock := simclock.New(1)
	reg := NewRegistry()
	for _, name := range []string{
		"mem.free_pages", "mem.available_pages", "mem.file_clean_pages",
		"mem.file_dirty_pages", "mem.writeback_pages", "mem.anon_pages",
		"mem.zram_stored_pages", "mem.pressure", "mem.pgscan_pages",
		"mem.pgsteal_pages", "mem.refault_pages", "mem.alloc_stalls",
		"kswapd.wakeups", "kswapd.batches", "lmkd.polls", "lmkd.pressure",
		"lmkd.kills_cached", "lmkd.kills_service", "lmkd.kills_visible",
		"lmkd.kills_foreground", "blockio.reads", "blockio.writes",
		"blockio.pages_read", "blockio.pages_written", "blockio.queue_depth_us",
		"sched.runnable", "sched.preemptions", "player.buffer_ms",
		"player.rung_bps", "player.frames_dropped",
	} {
		v := float64(len(name))
		reg.SampleFunc(name, func() float64 { return v })
	}
	s := NewSampler(clock, reg, Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample()
	}
}
