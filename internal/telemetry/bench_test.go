package telemetry_test

import (
	"testing"

	"coalqoe/internal/kernbench"
)

// Wrapper over the shared suite body (internal/kernbench), so
// `go test -bench . ./internal/telemetry` measures exactly what
// cmd/coalbench records in BENCH_5.json.

func BenchmarkSample(b *testing.B) { kernbench.TelemetrySample(b) }
