// Package atomicio writes artifacts temp-then-rename, so a reader (or
// a crash) never observes a half-written file. The dash server polls
// report files while experiments run, and a torn JSON or CSV prefix
// parses just well enough to be dangerous; os.Rename is atomic on
// POSIX, so publishing a fully written temp file closes the window.
// This is the same idiom the engine's checkpoint writer has used
// since PR 5, packaged for the cmd/ report writers — and it is the
// fix coalvet's atomicwrite analyzer prescribes.
//
// Durability is deliberately out of scope: like the checkpoint
// writer, no fsync is issued. The contract is atomic visibility, not
// crash-durability of the very last artifact.
package atomicio

import (
	"io/fs"
	"os"
)

// tmpSuffix marks the scratch path. The atomicwrite analyzer
// recognizes this suffix as a non-artifact destination.
const tmpSuffix = ".tmp"

// WriteFile writes data to path atomically: the bytes land in
// path+".tmp" and are renamed over path only when fully written. On
// error the scratch file is removed.
func WriteFile(path string, data []byte, perm fs.FileMode) error {
	tmp := path + tmpSuffix
	if err := os.WriteFile(tmp, data, perm); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// A File is a streaming atomic writer: bytes accumulate in a temp
// file and appear at the destination only on Commit.
type File struct {
	f         *os.File
	tmp, path string
	committed bool
}

// Create opens a temp file next to path for streaming writes. The
// destination is untouched until Commit.
func Create(path string) (*File, error) {
	f, err := os.Create(path + tmpSuffix)
	if err != nil {
		return nil, err
	}
	return &File{f: f, tmp: path + tmpSuffix, path: path}, nil
}

// Write streams into the temp file.
func (w *File) Write(p []byte) (int, error) {
	return w.f.Write(p)
}

// Commit closes the temp file and renames it over the destination.
func (w *File) Commit() error {
	if err := w.f.Close(); err != nil {
		os.Remove(w.tmp)
		return err
	}
	if err := os.Rename(w.tmp, w.path); err != nil {
		os.Remove(w.tmp)
		return err
	}
	w.committed = true
	return nil
}

// Close aborts an uncommitted write, removing the temp file; after a
// Commit it is a no-op, so `defer f.Close()` is always safe.
func (w *File) Close() error {
	if w.committed {
		return nil
	}
	err := w.f.Close()
	os.Remove(w.tmp)
	return err
}
