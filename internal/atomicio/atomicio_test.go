package atomicio

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")
	if err := WriteFile(path, []byte(`{"ok":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"ok":true}` {
		t.Errorf("content = %q", data)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("scratch file left behind: %v", err)
	}
}

func TestWriteFileReplacesExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "new" {
		t.Errorf("content = %q, want new", data)
	}
}

func TestCreateCommit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.txt")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("line 1\n")); err != nil {
		t.Fatal(err)
	}
	// The destination must not exist before Commit.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("destination visible before Commit: %v", err)
	}
	if _, err := f.Write([]byte("line 2\n")); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "line 1\nline 2\n" {
		t.Errorf("content = %q", data)
	}
	// Close after Commit is a no-op.
	if err := f.Close(); err != nil {
		t.Errorf("Close after Commit: %v", err)
	}
}

func TestCloseAborts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "partial.json")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("half a rec")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("aborted write published the destination: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("aborted write left the scratch file: %v", err)
	}
}
