// providerladder exercises the §7 provider-side extension: given the
// device population mix and the pressure exposure the §3 study
// measures, pick the encoding ladder that maximizes expected QoE —
// and show why offering low frame rates matters for the low end.
//
//	go run ./examples/providerladder
package main

import (
	"fmt"

	"coalqoe/internal/dash"
	"coalqoe/internal/ladderopt"
)

func main() {
	pop := ladderopt.DefaultPopulation()
	fmt.Println("device population:")
	for _, c := range pop {
		fmt.Printf("  %-12s share %.0f%%  pressure mix %v\n", c.Name, 100*c.Share, c.StateMix)
	}
	fmt.Println()

	for _, k := range []int{3, 4, 6} {
		res := ladderopt.Optimize(pop, dash.Ladder(24, 30, 48, 60), k, nil)
		fmt.Printf("best %d-rung ladder: %s\n", k, res)
	}
	fmt.Println()

	wide := ladderopt.Optimize(pop, dash.Ladder(24, 30, 48, 60), 6, nil)
	narrow := ladderopt.Optimize(pop, dash.Ladder(60), 6, nil)
	fmt.Printf("wide (multi-fps) ladder expected MOS: %.2f\n", wide.ExpectedMOS)
	fmt.Printf("60fps-only ladder expected MOS:       %.2f\n", narrow.ExpectedMOS)
	fmt.Println()
	fmt.Println("The gap concentrates on entry devices:")
	for name := range wide.PerClass {
		fmt.Printf("  %-12s wide %.2f vs 60fps-only %.2f\n", name, wide.PerClass[name], narrow.PerClass[name])
	}
}
