// httpstreaming exercises the real-network half of the library: a DASH
// server on a loopback HTTP listener, a client fetching the manifest
// and walking the segments of one representation through a wall-clock
// rate shaper — the same server/client/link pieces the simulator uses,
// over an actual TCP connection.
//
//	go run ./examples/httpstreaming
package main

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"coalqoe/internal/dash"
	"coalqoe/internal/netem"
	"coalqoe/internal/units"
)

func main() {
	video := dash.TestVideos[0]
	video.Duration = 20 * time.Second // five segments
	manifest := dash.NewManifest(video, 30, 60)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: dash.NewServer(manifest), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("dash server on %s\n", base)

	client := dash.NewClient(base, time.Now)
	dto, err := client.FetchManifest()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("manifest: %q (%s), %.0fs, %d representations\n",
		dto.Title, dto.Genre, dto.DurationSec, len(dto.Representations))

	// Stream the 720p30 representation and rate-limit the reads like a
	// constrained WiFi link.
	const rep = "720p30"
	segments := int(dto.DurationSec / dto.SegmentDuration)
	var total units.Bytes
	start := time.Now()
	for seg := 0; seg < segments; seg++ {
		resp, err := http.Get(fmt.Sprintf("%s/video/%s/%d", base, rep, seg))
		if err != nil {
			fatal(err)
		}
		n, err := drain(resp)
		if err != nil {
			fatal(err)
		}
		total += n
		fmt.Printf("  segment %d: %s\n", seg, n)
	}
	elapsed := time.Since(start)
	fmt.Printf("downloaded %s in %v (%.1f Mbps)\n",
		total, elapsed.Round(time.Millisecond),
		float64(total)*8/1e6/elapsed.Seconds())
}

// drain reads the body through a wall-clock shaper at 20 Mbps —
// comfortably above the 5 Mbps content rate, like the paper's
// never-a-bottleneck LAN, but far below raw loopback speed.
func drain(resp *http.Response) (units.Bytes, error) {
	defer resp.Body.Close()
	shaped := netem.NewShaper(resp.Body, 20*units.Mbps, time.Now, time.Sleep)
	n, err := io.Copy(io.Discard, shaped)
	if err != nil && !errors.Is(err, io.EOF) {
		return units.Bytes(n), err
	}
	return units.Bytes(n), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "httpstreaming:", err)
	os.Exit(1)
}
