// memaware-abr reproduces the paper's §6 opportunity end to end: the
// same pressured device and video, played three ways — fixed quality,
// a network-only ABR (BOLA), and the memory-aware policy that reacts
// to onTrimMemory signals by stepping the frame rate down first.
//
//	go run ./examples/memaware-abr
package main

import (
	"fmt"
	"time"

	"coalqoe/internal/abr"
	"coalqoe/internal/dash"
	"coalqoe/internal/device"
	"coalqoe/internal/exp"
	"coalqoe/internal/player"
	"coalqoe/internal/proc"
	"coalqoe/internal/qoe"
)

func play(name string, algo func() abr.Algorithm) {
	video := dash.TestVideos[0]
	video.Duration = 2 * time.Minute
	result := exp.Run(exp.VideoRun{
		Seed:       7,
		Profile:    device.Nokia1,
		Client:     player.Firefox,
		Video:      video,
		Resolution: dash.R1080p,
		FPS:        60,
		Pressure:   proc.Moderate,
		OnSession: func(s *player.Session, d *device.Device) {
			if algo != nil {
				abr.Attach(s, d, algo(), 2*time.Second)
			}
		},
	})
	m := result.Metrics
	fmt.Printf("%-10s drops=%5.1f%%  MOS=%.2f  crashed=%-5v final=%v\n",
		name, m.EffectiveDropRate, qoe.MOS(m), m.Crashed, m.Rung)
	for _, sw := range m.Switches {
		fmt.Printf("           t=%-6v %v -> %v\n", sw.At.Round(time.Second), sw.From, sw.To)
	}
}

func main() {
	fmt.Println("Nokia 1 under Moderate memory pressure, starting at 1080p60:")
	fmt.Println()
	play("fixed", nil)
	play("bola", func() abr.Algorithm { return abr.BOLA{} })
	play("memaware", func() abr.Algorithm { return &abr.MemoryAware{Inner: abr.BOLA{}} })
	fmt.Println()
	fmt.Println("The memory-aware policy trades encoded frame rate for smooth")
	fmt.Println("playback the moment pressure signals arrive — §6's insight.")
}
