// Quickstart: stream one video on a simulated entry-level phone under
// memory pressure and print what happened.
//
// This is the smallest useful composition of the library: boot a
// device, apply a pressure regime (like the paper's MP Simulator app),
// start a playback session, run the virtual clock, read the QoE.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"coalqoe/internal/dash"
	"coalqoe/internal/device"
	"coalqoe/internal/mempress"
	"coalqoe/internal/player"
	"coalqoe/internal/proc"
	"coalqoe/internal/qoe"
)

func main() {
	// 1. Boot a Nokia 1 (1 GB RAM, quad-core 1.1 GHz) and let the
	//    system processes settle.
	dev := device.New(42, device.Nokia1, device.Options{})
	dev.Settle(3 * time.Second)
	fmt.Printf("booted %s: %s available\n", dev, dev.Mem.Available().Bytes())

	// 2. Push the device into the Moderate memory-pressure regime.
	reached := false
	mempress.Apply(dev, proc.Moderate, func() { reached = true })
	for !reached && dev.Clock.Now() < 2*time.Minute {
		dev.Settle(time.Second)
	}
	fmt.Printf("reached Moderate pressure at t=%v (P=%.0f, %d background apps killed)\n",
		dev.Clock.Now().Round(time.Second), dev.Mem.Pressure(), dev.Lmkd.KillCount)

	// 3. Stream the paper's travel video at 720p60 in Firefox.
	video := dash.TestVideos[0]
	video.Duration = 90 * time.Second
	manifest := dash.NewManifest(video, 24, 30, 48, 60)
	rung, _ := manifest.Rung(dash.R720p, 60)
	session := player.Start(player.Config{
		Device:   dev,
		Client:   player.Firefox,
		Manifest: manifest,
		Rung:     rung,
	})
	signals := 0
	session.OnSignal(func(l proc.Level) {
		signals++
		if signals <= 5 {
			fmt.Printf("  t=%v onTrimMemory(%v)\n", dev.Clock.Now().Round(time.Second), l)
		}
	})

	// 4. Run to completion (or crash) and report.
	for session.Active() && dev.Clock.Now() < 10*time.Minute {
		dev.Settle(5 * time.Second)
	}
	m := session.Metrics()
	fmt.Println()
	fmt.Printf("  ... %d onTrimMemory deliveries in total\n\n", signals)
	fmt.Println(m)
	fmt.Printf("effective drop rate: %.1f%%   MOS: %.2f\n", m.EffectiveDropRate, qoe.MOS(m))
	if m.Crashed {
		fmt.Printf("the client was killed at t=%v — see Tables 2-3 of the paper\n", m.CrashedAt.Round(time.Second))
	}
}
