// fleetstudy runs a miniature version of the §3 user study: twenty
// synthetic participants, each with their own device and usage habits,
// and prints the pressure-exposure summary.
//
//	go run ./examples/fleetstudy
package main

import (
	"fmt"

	"coalqoe/internal/proc"
	"coalqoe/internal/study"
	"coalqoe/internal/units"
)

func main() {
	fleet := study.RunFleet(20, 7)
	fmt.Printf("recruited %d, kept %d with >=%.0fh interactive data\n\n",
		len(fleet.Recruited), len(fleet.Kept), study.MinInteractiveHours)

	fmt.Printf("%-8s %5s %6s %22s %14s\n", "user", "RAM", "util", "signals/h (M/L/C)", "time pressured")
	for _, l := range fleet.Logs {
		high := l.TimeShare[proc.Moderate] + l.TimeShare[proc.Low] + l.TimeShare[proc.Critical]
		fmt.Printf("%-8s %4.0fG %5.0f%% %7.1f /%5.1f /%5.1f %13.1f%%\n",
			l.User.ID, float64(l.User.RAM)/float64(units.GiB),
			100*l.MedianUtilization,
			l.SignalsPerHour[proc.Moderate], l.SignalsPerHour[proc.Low], l.SignalsPerHour[proc.Critical],
			100*high)
	}

	ins := fleet.Table1()
	fmt.Println()
	fmt.Printf("experienced pressure (>=1 signal/h): %.0f%%\n", ins.PctAnySignal)
	fmt.Printf("median utilization >= 60%%:           %.0f%%\n", ins.PctUtilOver60)
	fmt.Printf(">=2%% of time under pressure:         %.0f%%\n", ins.PctHighTimeOver2)
}
