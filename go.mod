module coalqoe

go 1.22
